"""Safe-exchange planning.

This module contains the scheduling algorithms of the reproduction:

* :func:`plan_delivery_order` — the complete greedy planner.  It decides the
  order in which goods are delivered such that, with suitably chosen payment
  chunks in between, every intermediate state keeps both partners'
  temptations within the allowances of the supplied
  :class:`~repro.core.safety.ExchangeRequirements`.  It returns ``None``
  exactly when no such order exists (completeness is exercised against the
  brute-force reference in the property tests).
* :func:`plan_delivery_order_quadratic` — the same algorithm implemented with
  explicit linear scans instead of sorting, mirroring the paper's
  "quadratic-time algorithm" claim.  Results are identical.
* :func:`build_sequence` / :func:`plan_exchange` — turn a delivery order into
  a full :class:`~repro.core.exchange.ExchangeSequence` by inserting payment
  chunks according to a :class:`PaymentPolicy`.
* :func:`brute_force_delivery_order` — exhaustive search over delivery
  orders, used as the ground-truth oracle in tests and ablations.
* :func:`required_total_tolerance` — the smallest total temptation allowance
  under which an exchange of the given bundle/price can be scheduled; used by
  the experiments to quantify "how much trust is needed".

Algorithm sketch (backward construction).  Write ``A_s`` and ``A_c`` for the
supplier- and consumer-temptation allowances and ``T = A_s + A_c``.  Walking
the delivery order backwards and keeping the running *deficit*
``D = Vs(S) - Vc(S)`` of the suffix ``S`` scheduled so far, an item ``y`` can
be appended (i.e. delivered just before the suffix) iff ``D + Vs(y) <= T``.
Items with non-negative surplus (``Vc >= Vs``) can always be moved to the
suffix side and are added greedily in ascending supplier cost; the remaining
deficit items are added in descending consumer value, which an adjacent-swap
argument shows to be optimal.  The start state additionally requires
``Vs(all) - P <= A_s`` and ``P - Vc(all) <= A_c``, and the end state requires
both allowances to be non-negative (which is why a *strictly* safe isolated
exchange never exists).
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exchange import ExchangeAction, ExchangeSequence
from repro.core.goods import Good, GoodsBundle
from repro.core.numeric import EPSILON, approx_ge, approx_le, total
from repro.core.safety import ExchangeRequirements
from repro.exceptions import NoSafeSequenceError

__all__ = [
    "PaymentPolicy",
    "plan_delivery_order",
    "plan_delivery_order_quadratic",
    "order_is_feasible",
    "build_sequence",
    "plan_exchange",
    "plan_exchange_or_raise",
    "exists_feasible_sequence",
    "max_prefix_demand",
    "max_prefix_demand_batch",
    "exchange_is_schedulable",
    "exchange_is_schedulable_batch",
    "brute_force_delivery_order",
    "required_total_tolerance",
]

#: Extra slack subtracted from the allowances when planning in strict mode so
#: that the produced schedules satisfy the strict inequalities of
#: :meth:`ExchangeRequirements.allows`.
STRICT_PLANNING_MARGIN = 1e-7


class PaymentPolicy(enum.Enum):
    """How payment chunks are sized between deliveries.

    All policies produce schedules satisfying the same safety requirements;
    they differ in how early the consumer's money moves, i.e. in which side
    carries more of the tolerated exposure (see Ablation A).
    """

    #: Pay as late and as little as the upper bound allows (consumer friendly).
    LAZY = "lazy"
    #: Pay down to the lower bound before every delivery (supplier friendly).
    EAGER = "eager"
    #: Aim for the midpoint of the admissible payment interval.
    BALANCED = "balanced"
    #: Keep both parties' temptations as small as the bounds allow: before a
    #: delivery, pay the outstanding amount down to (roughly) the consumer
    #: value of the goods still to be received.  Realised exposures then stay
    #: near the structural minimum instead of scaling with the allowances,
    #: which is what the trust-aware strategy wants by default.
    MINIMAL_EXPOSURE = "minimal-exposure"


def _effective_allowances(requirements: ExchangeRequirements) -> Tuple[float, float]:
    """Planner-internal allowances; strict mode reserves a tiny margin."""
    supplier_allowance = requirements.supplier_temptation_allowance
    consumer_allowance = requirements.consumer_temptation_allowance
    if requirements.strict:
        supplier_allowance -= STRICT_PLANNING_MARGIN
        consumer_allowance -= STRICT_PLANNING_MARGIN
    return supplier_allowance, consumer_allowance


def _boundary_conditions_hold(
    bundle: GoodsBundle,
    price: float,
    supplier_allowance: float,
    consumer_allowance: float,
) -> bool:
    """Start- and end-state conditions shared by all planners."""
    if price < -EPSILON:
        return False
    if not (approx_ge(supplier_allowance, 0.0) and approx_ge(consumer_allowance, 0.0)):
        return False
    if not approx_le(bundle.total_supplier_cost - price, supplier_allowance):
        return False
    if not approx_le(price - bundle.total_consumer_value, consumer_allowance):
        return False
    return True


def plan_delivery_order(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
) -> Optional[List[Good]]:
    """Find a delivery order admitting a schedule within the allowances.

    Returns the goods in delivery order, or ``None`` when no feasible order
    exists.  Runs in ``O(n log n)``.
    """
    supplier_allowance, consumer_allowance = _effective_allowances(requirements)
    if not _boundary_conditions_hold(
        bundle, price, supplier_allowance, consumer_allowance
    ):
        return None
    total_allowance = supplier_allowance + consumer_allowance

    surplus_items = sorted(
        (good for good in bundle if good.is_surplus_item),
        key=lambda good: good.supplier_cost,
    )
    deficit_items = sorted(
        (good for good in bundle if not good.is_surplus_item),
        key=lambda good: good.consumer_value,
        reverse=True,
    )

    reverse_order: List[Good] = []
    running_deficit = 0.0
    for good in itertools.chain(surplus_items, deficit_items):
        if not approx_le(running_deficit + good.supplier_cost, total_allowance):
            return None
        reverse_order.append(good)
        running_deficit += good.supplier_cost - good.consumer_value
    reverse_order.reverse()
    return reverse_order


def plan_delivery_order_quadratic(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
) -> Optional[List[Good]]:
    """Selection-scan variant of :func:`plan_delivery_order` (``O(n^2)``).

    Produces the same feasibility answer; the delivery order may differ in
    tie-breaking.  Kept as a faithful counterpart of the quadratic-time
    algorithm the paper refers to and exercised by the planner-cost
    benchmark (Table 3).
    """
    supplier_allowance, consumer_allowance = _effective_allowances(requirements)
    if not _boundary_conditions_hold(
        bundle, price, supplier_allowance, consumer_allowance
    ):
        return None
    total_allowance = supplier_allowance + consumer_allowance

    pending_surplus = [good for good in bundle if good.is_surplus_item]
    pending_deficit = [good for good in bundle if not good.is_surplus_item]
    reverse_order: List[Good] = []
    running_deficit = 0.0

    while pending_surplus:
        # Scan for the cheapest-to-produce surplus item still pending.
        best_index = min(
            range(len(pending_surplus)),
            key=lambda index: pending_surplus[index].supplier_cost,
        )
        good = pending_surplus.pop(best_index)
        if not approx_le(running_deficit + good.supplier_cost, total_allowance):
            return None
        reverse_order.append(good)
        running_deficit += good.supplier_cost - good.consumer_value

    while pending_deficit:
        # Scan for the deficit item with the largest consumer value.
        best_index = max(
            range(len(pending_deficit)),
            key=lambda index: pending_deficit[index].consumer_value,
        )
        good = pending_deficit.pop(best_index)
        if not approx_le(running_deficit + good.supplier_cost, total_allowance):
            return None
        reverse_order.append(good)
        running_deficit += good.supplier_cost - good.consumer_value

    reverse_order.reverse()
    return reverse_order


def order_is_feasible(
    order: Sequence[Good],
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
) -> bool:
    """Check whether a specific delivery order admits safe payment chunking.

    The order must contain every good of the bundle exactly once.  This is
    the exact per-step condition the planners are derived from and is used as
    the oracle by :func:`brute_force_delivery_order`.
    """
    if sorted(good.good_id for good in order) != sorted(bundle.good_ids):
        return False
    supplier_allowance, consumer_allowance = _effective_allowances(requirements)
    if not _boundary_conditions_hold(
        bundle, price, supplier_allowance, consumer_allowance
    ):
        return False
    remaining_cost = bundle.total_supplier_cost
    remaining_value = bundle.total_consumer_value
    for good in order:
        lower_now = max(0.0, remaining_cost - supplier_allowance)
        upper_after_delivery = (
            remaining_value - good.consumer_value + consumer_allowance
        )
        if not approx_le(lower_now, upper_after_delivery):
            return False
        remaining_cost -= good.supplier_cost
        remaining_value -= good.consumer_value
    return True


def build_sequence(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
    order: Sequence[Good],
    payment_policy: PaymentPolicy = PaymentPolicy.LAZY,
) -> ExchangeSequence:
    """Interleave payment chunks with the given delivery order.

    The order must be feasible (as produced by one of the planners or
    verified with :func:`order_is_feasible`); otherwise the resulting
    sequence would violate the requirements.
    """
    supplier_allowance, consumer_allowance = _effective_allowances(requirements)
    actions: List[ExchangeAction] = []
    remaining_payment = float(price)
    remaining_cost = total(good.supplier_cost for good in order)
    remaining_value = total(good.consumer_value for good in order)

    for good in order:
        lower_now = max(0.0, remaining_cost - supplier_allowance)
        upper_after_delivery = (
            remaining_value - good.consumer_value + consumer_allowance
        )
        highest_allowed = min(remaining_payment, upper_after_delivery)
        if payment_policy is PaymentPolicy.LAZY:
            target = highest_allowed
        elif payment_policy is PaymentPolicy.EAGER:
            target = lower_now
        elif payment_policy is PaymentPolicy.MINIMAL_EXPOSURE:
            # Aim for a remaining payment equal to the consumer value still
            # outstanding after this delivery: the consumer is then never
            # tempted, and the supplier only as much as the lower bound forces.
            target = max(lower_now, remaining_value - good.consumer_value)
        else:
            target = (lower_now + highest_allowed) / 2.0
        target = min(max(target, lower_now, 0.0), highest_allowed)
        chunk = remaining_payment - target
        # Deferring a dust payment leaves up to `chunk` of extra temptation
        # on the deferred side; the skip threshold must therefore stay
        # strictly inside the verifier's EPSILON, or a state already exactly
        # at its allowance fails verification by one rounding ulp.
        if chunk > EPSILON / 2:
            actions.append(ExchangeAction.pay(chunk))
            remaining_payment = target
        actions.append(ExchangeAction.deliver(good))
        remaining_cost -= good.supplier_cost
        remaining_value -= good.consumer_value

    if remaining_payment > EPSILON:
        actions.append(ExchangeAction.pay(remaining_payment))
    return ExchangeSequence(bundle, price, actions)


def plan_exchange(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
    payment_policy: PaymentPolicy = PaymentPolicy.LAZY,
) -> Optional[ExchangeSequence]:
    """Plan a complete exchange schedule, or return ``None`` if none exists."""
    order = plan_delivery_order(bundle, price, requirements)
    if order is None:
        return None
    return build_sequence(bundle, price, requirements, order, payment_policy)


def plan_exchange_or_raise(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
    payment_policy: PaymentPolicy = PaymentPolicy.LAZY,
) -> ExchangeSequence:
    """Like :func:`plan_exchange` but raising :class:`NoSafeSequenceError`."""
    sequence = plan_exchange(bundle, price, requirements, payment_policy)
    if sequence is None:
        raise NoSafeSequenceError(
            "no exchange sequence satisfies the given requirements "
            f"(price={price:.3f}, total allowance="
            f"{requirements.total_allowance:.3f})"
        )
    return sequence


def exists_feasible_sequence(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
) -> bool:
    """Whether any schedule satisfying the requirements exists."""
    return plan_delivery_order(bundle, price, requirements) is not None


def max_prefix_demand(bundle: GoodsBundle) -> float:
    """Peak ``D + Vs(y)`` along the greedy planner's canonical order.

    This is the bundle's intrinsic demand on the *total* temptation
    allowance: :func:`plan_delivery_order` succeeds exactly when the
    boundary conditions hold and this value is (approximately) at most
    ``A_s + A_c``.  Computing it is independent of the allowances, so a
    batched candidate screen can price a bundle once and test many
    allowance pairs against it.
    """
    surplus_items = sorted(
        (good for good in bundle if good.is_surplus_item),
        key=lambda good: good.supplier_cost,
    )
    deficit_items = sorted(
        (good for good in bundle if not good.is_surplus_item),
        key=lambda good: good.consumer_value,
        reverse=True,
    )
    demand = 0.0
    running_deficit = 0.0
    for good in itertools.chain(surplus_items, deficit_items):
        demand = max(demand, running_deficit + good.supplier_cost)
        running_deficit += good.supplier_cost - good.consumer_value
    return demand


def _max_prefix_demand_kernel(costs: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`max_prefix_demand` for bundles sharing one shape.

    ``costs``/``values`` are ``(k, n)`` arrays of the k bundles' per-item
    supplier costs and consumer values.  Replays the greedy planner's
    canonical order row by row with stable sorts and a sequential
    accumulation, so every row agrees bit for bit with the scalar walk —
    including tie-breaking (stable sorts preserve original item order, just
    like ``sorted``) and floating-point accumulation order
    (``np.add.accumulate`` adds strictly left to right).
    """
    if costs.shape[1] == 0:
        return np.zeros(len(costs))
    surplus = values >= costs
    # Canonical order = surplus items by ascending cost, then deficit items
    # by descending value; a stable sort on the secondary key followed by a
    # stable sort on the primary key is exactly that lexicographic order.
    primary = np.where(surplus, 0, 1)
    secondary = np.where(surplus, costs, -values)
    perm = np.argsort(secondary, axis=1, kind="stable")
    perm = np.take_along_axis(
        perm,
        np.argsort(
            np.take_along_axis(primary, perm, axis=1), axis=1, kind="stable"
        ),
        axis=1,
    )
    ordered_costs = np.take_along_axis(costs, perm, axis=1)
    ordered_values = np.take_along_axis(values, perm, axis=1)
    deficits = ordered_costs - ordered_values
    # Exclusive prefix sum: subtracting back out of an inclusive cumsum
    # would reorder the additions and drift by an ulp, so shift instead.
    running = np.zeros_like(deficits)
    running[:, 1:] = np.cumsum(deficits[:, :-1], axis=1)
    return np.maximum(0.0, np.max(running + ordered_costs, axis=1))


def max_prefix_demand_batch(bundles: Sequence[GoodsBundle]) -> np.ndarray:
    """Batched :func:`max_prefix_demand` over many candidate bundles.

    Bundles are grouped by item count and each group is priced in one
    vectorized pass (:func:`_max_prefix_demand_kernel`); results are bit
    for bit identical to calling :func:`max_prefix_demand` per bundle.
    """
    demands = np.zeros(len(bundles))
    groups: dict = {}
    for index, bundle in enumerate(bundles):
        groups.setdefault(len(bundle), []).append(index)
    for size, indices in groups.items():
        if size == 0:
            continue
        costs = np.array(
            [[good.supplier_cost for good in bundles[i]] for i in indices]
        )
        values = np.array(
            [[good.consumer_value for good in bundles[i]] for i in indices]
        )
        demands[indices] = _max_prefix_demand_kernel(costs, values)
    return demands


def exchange_is_schedulable(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
    prefix_demand: Optional[float] = None,
) -> bool:
    """Exact feasibility of :func:`plan_delivery_order`, without the order.

    Decomposes feasibility into the boundary conditions plus the
    ``max_prefix_demand`` test (pass a precomputed ``prefix_demand`` to
    amortise it across candidates at different allowances).  Agrees with
    ``plan_delivery_order(...) is not None`` bit for bit — including the
    planner's approximate comparisons — which is what lets the community
    hot path skip planning for infeasible candidates without changing any
    outcome.
    """
    supplier_allowance, consumer_allowance = _effective_allowances(requirements)
    if not _boundary_conditions_hold(
        bundle, price, supplier_allowance, consumer_allowance
    ):
        return False
    if prefix_demand is None:
        prefix_demand = max_prefix_demand(bundle)
    return approx_le(prefix_demand, supplier_allowance + consumer_allowance)


def exchange_is_schedulable_batch(
    bundles: Sequence[GoodsBundle],
    prices: Sequence[float],
    requirements: Sequence[ExchangeRequirements],
    prefix_demands: "Optional[np.ndarray]" = None,
) -> np.ndarray:
    """Vectorized :func:`exchange_is_schedulable` over aligned candidates.

    Evaluates the boundary conditions and the prefix-demand test for the
    whole batch elementwise (float64 throughout, the same ``EPSILON``
    comparisons), so the returned boolean mask agrees bit for bit with the
    scalar rule — and therefore with ``plan_delivery_order(...) is not
    None`` — on every candidate.  This is the candidate screen's hot path:
    one call replaces a Python loop over candidates.
    """
    count = len(bundles)
    if not (count == len(prices) == len(requirements)):
        raise ValueError(
            "bundles, prices and requirements must be aligned, got "
            f"{count}/{len(prices)}/{len(requirements)}"
        )
    if count == 0:
        return np.zeros(0, dtype=bool)
    price_arr = np.asarray(prices, dtype=np.float64)
    supplier_allowances = np.empty(count)
    consumer_allowances = np.empty(count)
    for index, requirement in enumerate(requirements):
        supplier_allowances[index], consumer_allowances[index] = (
            _effective_allowances(requirement)
        )
    if prefix_demands is None:
        prefix_demands = max_prefix_demand_batch(bundles)
    else:
        prefix_demands = np.asarray(prefix_demands, dtype=np.float64)
    total_costs = np.array([bundle.total_supplier_cost for bundle in bundles])
    total_values = np.array([bundle.total_consumer_value for bundle in bundles])
    feasible = price_arr >= -EPSILON
    feasible &= supplier_allowances >= -EPSILON
    feasible &= consumer_allowances >= -EPSILON
    feasible &= total_costs - price_arr <= supplier_allowances + EPSILON
    feasible &= price_arr - total_values <= consumer_allowances + EPSILON
    feasible &= prefix_demands <= (
        supplier_allowances + consumer_allowances + EPSILON
    )
    return feasible


def brute_force_delivery_order(
    bundle: GoodsBundle,
    price: float,
    requirements: ExchangeRequirements,
    max_items: int = 9,
) -> Optional[List[Good]]:
    """Exhaustively search delivery orders (reference oracle for tests).

    Raises ``ValueError`` for bundles larger than ``max_items`` to avoid
    factorial blow-ups by accident.
    """
    if len(bundle) > max_items:
        raise ValueError(
            f"brute force search limited to {max_items} items, "
            f"bundle has {len(bundle)}"
        )
    goods = list(bundle)
    for order in itertools.permutations(goods):
        if order_is_feasible(order, bundle, price, requirements):
            return list(order)
    return None


def required_total_tolerance(
    bundle: GoodsBundle,
    price: float,
    precision: float = 1e-6,
) -> float:
    """Smallest total temptation allowance that makes the exchange schedulable.

    The allowance is assumed to be split evenly between the two sides
    (``A_s = A_c = T / 2``); the result quantifies how much combined
    reputation continuation value and/or trust-based accepted exposure the
    partners need before the bundle can be exchanged at the given price.
    Returns ``0.0`` when a fully safe (non-strict) schedule already exists.
    """

    def feasible(total_tolerance: float) -> bool:
        half = total_tolerance / 2.0
        requirements = ExchangeRequirements(
            consumer_accepted_exposure=half,
            supplier_accepted_exposure=half,
        )
        return exists_feasible_sequence(bundle, price, requirements)

    if feasible(0.0):
        return 0.0
    upper = 2.0 * (
        bundle.total_supplier_cost + bundle.total_consumer_value + abs(price) + 1.0
    )
    if not feasible(upper):
        # Should not happen: with a huge allowance any order is feasible.
        raise NoSafeSequenceError(
            "exchange infeasible even with an unbounded allowance; "
            "this indicates an invalid price"
        )
    low, high = 0.0, upper
    while high - low > precision:
        mid = (low + high) / 2.0
        if feasible(mid):
            high = mid
        else:
            low = mid
    return high
