"""Exchange state machine: actions, states and sequences.

An exchange between a supplier and a consumer is a sequence of two kinds of
actions:

* ``DELIVER`` — the supplier hands over one item of the goods bundle, and
* ``PAY`` — the consumer transfers a payment chunk of arbitrary size.

The state of the exchange is fully described by the set of goods still to be
delivered and the payment still outstanding.  From the state, the two
quantities the safety analysis revolves around are derived:

* the *supplier's temptation* to defect, ``Vs(remaining) - remaining_payment``
  (positive when the outstanding revenue no longer covers the outstanding
  production cost), and
* the *consumer's temptation* to defect, ``remaining_payment - Vc(remaining)``
  (positive when the outstanding payment exceeds the value still to be
  received).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.goods import Good, GoodsBundle
from repro.core.numeric import EPSILON, approx_eq, non_negative, total
from repro.exceptions import InvalidActionError, InvalidSequenceError

__all__ = [
    "Role",
    "ActionKind",
    "ExchangeAction",
    "ExchangeState",
    "ExchangeSequence",
]


class Role(enum.Enum):
    """The two parties of an exchange."""

    SUPPLIER = "supplier"
    CONSUMER = "consumer"

    @property
    def other(self) -> "Role":
        """The counterparty of this role."""
        return Role.CONSUMER if self is Role.SUPPLIER else Role.SUPPLIER


class ActionKind(enum.Enum):
    """Kind of a single exchange step."""

    DELIVER = "deliver"
    PAY = "pay"


@dataclass(frozen=True)
class ExchangeAction:
    """One step of an exchange: a delivery of a good or a payment chunk."""

    kind: ActionKind
    good_id: Optional[str] = None
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is ActionKind.DELIVER:
            if not self.good_id:
                raise InvalidActionError("DELIVER action requires a good_id")
            if self.amount:
                raise InvalidActionError("DELIVER action must not carry an amount")
        else:
            if self.good_id is not None:
                raise InvalidActionError("PAY action must not carry a good_id")
            if self.amount <= 0:
                raise InvalidActionError(
                    f"PAY action requires a positive amount, got {self.amount}"
                )

    @classmethod
    def deliver(cls, good: "Good | str") -> "ExchangeAction":
        """Create a delivery action for ``good`` (a :class:`Good` or its id)."""
        good_id = good.good_id if isinstance(good, Good) else good
        return cls(kind=ActionKind.DELIVER, good_id=good_id)

    @classmethod
    def pay(cls, amount: float) -> "ExchangeAction":
        """Create a payment action transferring ``amount``."""
        return cls(kind=ActionKind.PAY, amount=float(amount))

    @property
    def actor(self) -> Role:
        """The role that performs this action."""
        return Role.SUPPLIER if self.kind is ActionKind.DELIVER else Role.CONSUMER

    def describe(self) -> str:
        """Human readable one-line description."""
        if self.kind is ActionKind.DELIVER:
            return f"supplier delivers {self.good_id}"
        return f"consumer pays {self.amount:.3f}"


@dataclass(frozen=True)
class ExchangeState:
    """Immutable snapshot of an exchange in progress.

    Attributes
    ----------
    bundle:
        The full goods bundle being traded.
    price:
        The agreed total price ``P``.
    delivered_ids:
        Ids of the goods already delivered.
    paid:
        Total amount already paid by the consumer.
    """

    bundle: GoodsBundle
    price: float
    delivered_ids: FrozenSet[str] = field(default_factory=frozenset)
    paid: float = 0.0

    @classmethod
    def initial(cls, bundle: GoodsBundle, price: float) -> "ExchangeState":
        """The state before any delivery or payment has happened."""
        if price < 0:
            raise InvalidActionError(f"price must be non-negative, got {price}")
        return cls(bundle=bundle, price=float(price))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def remaining_ids(self) -> Tuple[str, ...]:
        """Ids of the goods not yet delivered, in bundle order."""
        return tuple(
            good.good_id
            for good in self.bundle
            if good.good_id not in self.delivered_ids
        )

    @property
    def remaining_goods(self) -> Tuple[Good, ...]:
        """The goods not yet delivered, in bundle order."""
        return tuple(
            good for good in self.bundle if good.good_id not in self.delivered_ids
        )

    @property
    def delivered_goods(self) -> Tuple[Good, ...]:
        """The goods already delivered, in bundle order."""
        return tuple(
            good for good in self.bundle if good.good_id in self.delivered_ids
        )

    @property
    def remaining_payment(self) -> float:
        """Outstanding payment ``r = P - paid`` (never below zero)."""
        return non_negative(self.price - self.paid)

    @property
    def remaining_supplier_cost(self) -> float:
        """``Vs`` of the goods still to be delivered."""
        return total(good.supplier_cost for good in self.remaining_goods)

    @property
    def remaining_consumer_value(self) -> float:
        """``Vc`` of the goods still to be delivered."""
        return total(good.consumer_value for good in self.remaining_goods)

    @property
    def supplier_temptation(self) -> float:
        """How much the supplier gains by defecting right now.

        Positive when the cost of the goods still to be delivered exceeds the
        payment still to be received.
        """
        return self.remaining_supplier_cost - self.remaining_payment

    @property
    def consumer_temptation(self) -> float:
        """How much the consumer gains by defecting right now.

        Positive when the payment still owed exceeds the value of the goods
        still to be received.
        """
        return self.remaining_payment - self.remaining_consumer_value

    @property
    def supplier_utility(self) -> float:
        """The supplier's realised utility so far: payments minus costs."""
        delivered_cost = total(good.supplier_cost for good in self.delivered_goods)
        return self.paid - delivered_cost

    @property
    def consumer_utility(self) -> float:
        """The consumer's realised utility so far: received value minus payments."""
        delivered_value = total(good.consumer_value for good in self.delivered_goods)
        return delivered_value - self.paid

    @property
    def is_complete(self) -> bool:
        """``True`` when every good is delivered and the full price is paid."""
        return len(self.delivered_ids) == len(self.bundle) and approx_eq(
            self.paid, self.price
        )

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def apply(self, action: ExchangeAction) -> "ExchangeState":
        """Return the state reached by performing ``action``.

        Raises :class:`InvalidActionError` when the action is not applicable
        (unknown or already-delivered good, or an over-payment).
        """
        if action.kind is ActionKind.DELIVER:
            assert action.good_id is not None
            if action.good_id not in self.bundle:
                raise InvalidActionError(
                    f"good {action.good_id!r} is not part of the bundle"
                )
            if action.good_id in self.delivered_ids:
                raise InvalidActionError(
                    f"good {action.good_id!r} has already been delivered"
                )
            return replace(
                self, delivered_ids=self.delivered_ids | {action.good_id}
            )
        new_paid = self.paid + action.amount
        if new_paid > self.price + EPSILON:
            raise InvalidActionError(
                f"payment of {action.amount:.3f} exceeds the outstanding amount "
                f"({self.remaining_payment:.3f})"
            )
        return replace(self, paid=min(new_paid, self.price))

    def utility_of(self, role: Role) -> float:
        """Realised utility so far of the given role."""
        if role is Role.SUPPLIER:
            return self.supplier_utility
        return self.consumer_utility

    def temptation_of(self, role: Role) -> float:
        """Defection temptation of the given role in this state."""
        if role is Role.SUPPLIER:
            return self.supplier_temptation
        return self.consumer_temptation


class ExchangeSequence:
    """A complete schedule of deliveries and payments for one exchange.

    The sequence is validated on construction: every good of the bundle must
    be delivered exactly once, every payment must be positive and the
    payments must add up to the agreed price.
    """

    __slots__ = ("_bundle", "_price", "_actions")

    def __init__(
        self,
        bundle: GoodsBundle,
        price: float,
        actions: Sequence[ExchangeAction],
    ):
        self._bundle = bundle
        self._price = float(price)
        self._actions: Tuple[ExchangeAction, ...] = tuple(actions)
        self._validate()

    def _validate(self) -> None:
        if self._price < 0:
            raise InvalidSequenceError(f"price must be >= 0, got {self._price}")
        delivered: List[str] = []
        paid = 0.0
        for action in self._actions:
            if action.kind is ActionKind.DELIVER:
                assert action.good_id is not None
                if action.good_id not in self._bundle:
                    raise InvalidSequenceError(
                        f"sequence delivers unknown good {action.good_id!r}"
                    )
                if action.good_id in delivered:
                    raise InvalidSequenceError(
                        f"sequence delivers good {action.good_id!r} twice"
                    )
                delivered.append(action.good_id)
            else:
                paid += action.amount
        if len(delivered) != len(self._bundle):
            missing = set(self._bundle.good_ids) - set(delivered)
            raise InvalidSequenceError(
                f"sequence does not deliver all goods; missing: {sorted(missing)}"
            )
        if not approx_eq(paid, self._price, eps=1e-6):
            raise InvalidSequenceError(
                f"payments sum to {paid:.6f}, expected the agreed price "
                f"{self._price:.6f}"
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def bundle(self) -> GoodsBundle:
        return self._bundle

    @property
    def price(self) -> float:
        return self._price

    @property
    def actions(self) -> Tuple[ExchangeAction, ...]:
        return self._actions

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[ExchangeAction]:
        return iter(self._actions)

    def __repr__(self) -> str:
        return (
            f"ExchangeSequence(n_actions={len(self._actions)}, "
            f"price={self._price:.3f}, goods={len(self._bundle)})"
        )

    @property
    def delivery_order(self) -> Tuple[str, ...]:
        """Good ids in the order they are delivered."""
        return tuple(
            action.good_id  # type: ignore[misc]
            for action in self._actions
            if action.kind is ActionKind.DELIVER
        )

    @property
    def payments(self) -> Tuple[float, ...]:
        """The payment chunks in order."""
        return tuple(
            action.amount
            for action in self._actions
            if action.kind is ActionKind.PAY
        )

    @property
    def num_deliveries(self) -> int:
        return len(self.delivery_order)

    @property
    def num_payments(self) -> int:
        return len(self.payments)

    # ------------------------------------------------------------------
    # State iteration
    # ------------------------------------------------------------------
    def states(self) -> Iterator[ExchangeState]:
        """Yield the initial state and the state after every action."""
        state = ExchangeState.initial(self._bundle, self._price)
        yield state
        for action in self._actions:
            state = state.apply(action)
            yield state

    def final_state(self) -> ExchangeState:
        """The state after the last action (complete by construction)."""
        state = ExchangeState.initial(self._bundle, self._price)
        for action in self._actions:
            state = state.apply(action)
        return state

    @property
    def max_supplier_temptation(self) -> float:
        """Largest supplier temptation reached anywhere in the schedule."""
        return max(state.supplier_temptation for state in self.states())

    @property
    def max_consumer_temptation(self) -> float:
        """Largest consumer temptation reached anywhere in the schedule."""
        return max(state.consumer_temptation for state in self.states())

    def describe(self) -> str:
        """Multi-line human readable rendering of the schedule."""
        lines = [
            f"Exchange of {len(self._bundle)} goods for {self._price:.3f}",
        ]
        for index, (action, state) in enumerate(
            zip(self._actions, list(self.states())[1:]), start=1
        ):
            lines.append(
                f"  {index:3d}. {action.describe():<40s} "
                f"remaining payment={state.remaining_payment:8.3f}  "
                f"temptation(s)={state.supplier_temptation:8.3f}  "
                f"temptation(c)={state.consumer_temptation:8.3f}"
            )
        return "\n".join(lines)
