"""Decision-making module: risk averseness turned into accepted exposure.

Figure 1 of the paper places a *decision making* module between the trust
estimates and the actual interaction: given the predicted behaviour of the
partner and "risk averseness related inputs from the user" it decides whether
to interact and — in the trust-aware exchange of Section 3 — how much value
the party accepts to be indebted during the exchange.

The paper deliberately leaves the concrete mapping to the partners
("The question of how much to decrease the expected gains is left to the
partners themselves"), so this module provides a family of
:class:`RiskPolicy` implementations covering the natural design space, all
mapping a trust estimate (probability the partner behaves honestly) and the
potential gain of the exchange to a non-negative *accepted exposure*:

* :class:`ZeroExposurePolicy` — never accept any exposure (fully safe only).
* :class:`FractionalGainPolicy` — accept a fixed fraction of the potential
  gain, scaled by trust.
* :class:`ExpectedLossBudgetPolicy` — cap the *expected* loss at a fraction
  of the potential gain.
* :class:`RiskNeutralPolicy` — accept exposure as long as the expected value
  of the exchange stays non-negative.
* :class:`CaraPolicy` — constant-absolute-risk-aversion expected utility.
* :class:`TrustThresholdPolicy` — a simple gate: full exposure above a trust
  threshold, none below.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import DecisionError

__all__ = [
    "RiskPolicy",
    "ZeroExposurePolicy",
    "FractionalGainPolicy",
    "ExpectedLossBudgetPolicy",
    "RiskNeutralPolicy",
    "CaraPolicy",
    "TrustThresholdPolicy",
    "ExposureAssessment",
    "InteractionDecision",
    "DecisionMaker",
]


def _validate_inputs(trust: float, potential_gain: float) -> None:
    if not 0.0 <= trust <= 1.0:
        raise DecisionError(f"trust estimate must lie in [0, 1], got {trust}")
    if potential_gain < 0.0:
        raise DecisionError(
            f"potential gain must be non-negative, got {potential_gain}"
        )


def _validate_arrays(
    trusts: Sequence[float], potential_gains: Sequence[float]
) -> "tuple[np.ndarray, np.ndarray]":
    trusts_array = np.asarray(trusts, dtype=np.float64)
    gains_array = np.asarray(potential_gains, dtype=np.float64)
    if trusts_array.shape != gains_array.shape:
        raise DecisionError("trusts and potential_gains must have equal length")
    if ((trusts_array < 0.0) | (trusts_array > 1.0)).any():
        raise DecisionError("trust estimates must lie in [0, 1]")
    if (gains_array < 0.0).any():
        raise DecisionError("potential gains must be non-negative")
    return trusts_array, gains_array


class RiskPolicy(abc.ABC):
    """Maps (trust estimate, potential gain) to an accepted exposure."""

    @abc.abstractmethod
    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        """Largest partner temptation this party accepts to be exposed to."""

    def accepted_exposures(
        self, trusts: Sequence[float], potential_gains: Sequence[float]
    ) -> np.ndarray:
        """Vectorized accepted exposures for batches of candidate exchanges.

        The default falls back to one scalar call per element; policies with
        closed forms override it with a pure numpy implementation.  Used by
        the batched trust-backend data path to assess many candidate
        partners in one pass.
        """
        return np.fromiter(
            (
                self.accepted_exposure(float(trust), float(gain))
                for trust, gain in zip(trusts, potential_gains)
            ),
            dtype=np.float64,
            count=len(trusts),
        )

    def describe(self) -> str:
        """Short human readable name used in experiment output."""
        return type(self).__name__


class ZeroExposurePolicy(RiskPolicy):
    """Never accept any exposure: only fully safe schedules are acceptable."""

    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        _validate_inputs(trust, potential_gain)
        return 0.0


@dataclass
class FractionalGainPolicy(RiskPolicy):
    """Accept exposure up to ``fraction * trust * potential_gain``.

    A simple linear rule: the more the party stands to gain and the more it
    trusts the partner, the more it is willing to put at stake.  ``fraction``
    encodes risk averseness (0 = maximally averse, values above 1 are allowed
    and model risk-seeking parties).
    """

    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.fraction < 0.0:
            raise DecisionError(f"fraction must be >= 0, got {self.fraction}")

    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        _validate_inputs(trust, potential_gain)
        return self.fraction * trust * potential_gain

    def accepted_exposures(
        self, trusts: Sequence[float], potential_gains: Sequence[float]
    ) -> np.ndarray:
        trusts_array, gains_array = _validate_arrays(trusts, potential_gains)
        return self.fraction * trusts_array * gains_array

    def describe(self) -> str:
        return f"fractional(fraction={self.fraction})"


@dataclass
class ExpectedLossBudgetPolicy(RiskPolicy):
    """Cap the expected loss at ``budget_fraction * potential_gain``.

    If the partner defects with probability ``1 - trust`` at the moment of
    maximal exposure ``B``, the expected loss is ``(1 - trust) * B``.  The
    policy accepts the largest ``B`` keeping that expected loss within the
    budget, optionally clipped at ``absolute_cap``.
    """

    budget_fraction: float = 0.5
    absolute_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.budget_fraction < 0.0:
            raise DecisionError(
                f"budget_fraction must be >= 0, got {self.budget_fraction}"
            )
        if self.absolute_cap is not None and self.absolute_cap < 0.0:
            raise DecisionError(
                f"absolute_cap must be >= 0, got {self.absolute_cap}"
            )

    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        _validate_inputs(trust, potential_gain)
        budget = self.budget_fraction * potential_gain
        if trust >= 1.0:
            exposure = math.inf
        else:
            exposure = budget / (1.0 - trust)
        if self.absolute_cap is not None:
            exposure = min(exposure, self.absolute_cap)
        if math.isinf(exposure):
            # A fully trusted partner with no cap: accept any exposure the
            # exchange could possibly create (bounded by gain/loss scale of
            # the caller); returning a huge finite number keeps the planner's
            # arithmetic well behaved.
            exposure = 1e12
        return exposure

    def accepted_exposures(
        self, trusts: Sequence[float], potential_gains: Sequence[float]
    ) -> np.ndarray:
        trusts_array, gains_array = _validate_arrays(trusts, potential_gains)
        budgets = self.budget_fraction * gains_array
        with np.errstate(divide="ignore", invalid="ignore"):
            exposures = np.where(
                trusts_array >= 1.0, np.inf, budgets / (1.0 - trusts_array)
            )
        if self.absolute_cap is not None:
            exposures = np.minimum(exposures, self.absolute_cap)
        return np.where(np.isinf(exposures), 1e12, exposures)

    def describe(self) -> str:
        return (
            f"expected-loss(budget={self.budget_fraction}, cap={self.absolute_cap})"
        )


@dataclass
class RiskNeutralPolicy(RiskPolicy):
    """Accept exposure while the exchange's expected value stays non-negative.

    A risk-neutral party facing exposure ``B`` and gain ``G`` with honesty
    probability ``t`` computes ``t * G - (1 - t) * B`` and accepts the largest
    ``B`` keeping it non-negative.
    """

    absolute_cap: Optional[float] = None

    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        _validate_inputs(trust, potential_gain)
        if trust >= 1.0:
            exposure = math.inf
        else:
            exposure = trust * potential_gain / (1.0 - trust)
        if self.absolute_cap is not None:
            exposure = min(exposure, self.absolute_cap)
        if math.isinf(exposure):
            exposure = 1e12
        return exposure

    def describe(self) -> str:
        return f"risk-neutral(cap={self.absolute_cap})"


@dataclass
class CaraPolicy(RiskPolicy):
    """Constant absolute risk aversion (CARA) expected-utility policy.

    Utility ``u(x) = (1 - exp(-a * x)) / a`` with risk aversion ``a > 0``.
    The accepted exposure is the largest ``B`` with
    ``t * u(G) + (1 - t) * u(-B) >= u(0) = 0``, which has the closed form
    ``B = ln(1 + t * (1 - exp(-a G)) / (1 - t)) / a``.
    As ``a -> 0`` this converges to the risk-neutral rule.
    """

    risk_aversion: float = 0.1
    absolute_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.risk_aversion <= 0.0:
            raise DecisionError(
                f"risk_aversion must be > 0, got {self.risk_aversion}"
            )

    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        _validate_inputs(trust, potential_gain)
        a = self.risk_aversion
        if trust >= 1.0:
            exposure = math.inf
        else:
            gain_term = 1.0 - math.exp(-a * potential_gain)
            exposure = math.log1p(trust * gain_term / (1.0 - trust)) / a
        if self.absolute_cap is not None:
            exposure = min(exposure, self.absolute_cap)
        if math.isinf(exposure):
            exposure = 1e12
        return exposure

    def describe(self) -> str:
        return f"cara(a={self.risk_aversion}, cap={self.absolute_cap})"


@dataclass
class TrustThresholdPolicy(RiskPolicy):
    """All-or-nothing rule: accept a fixed exposure above a trust threshold."""

    trust_threshold: float = 0.8
    exposure_if_trusted: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trust_threshold <= 1.0:
            raise DecisionError(
                f"trust_threshold must lie in [0, 1], got {self.trust_threshold}"
            )
        if self.exposure_if_trusted < 0.0:
            raise DecisionError(
                f"exposure_if_trusted must be >= 0, got {self.exposure_if_trusted}"
            )

    def accepted_exposure(self, trust: float, potential_gain: float) -> float:
        _validate_inputs(trust, potential_gain)
        if trust >= self.trust_threshold:
            return self.exposure_if_trusted
        return 0.0

    def describe(self) -> str:
        return (
            f"threshold(trust>={self.trust_threshold}, "
            f"exposure={self.exposure_if_trusted})"
        )


@dataclass(frozen=True)
class ExposureAssessment:
    """A party's assessment of how much exposure it accepts for an exchange."""

    trust: float
    potential_gain: float
    accepted_exposure: float

    @property
    def expected_loss_bound(self) -> float:
        """Expected loss if the partner defects at the moment of full exposure."""
        return (1.0 - self.trust) * self.accepted_exposure


@dataclass(frozen=True)
class InteractionDecision:
    """Outcome of the decision-making module for one prospective exchange."""

    accept: bool
    reason: str
    expected_utility: float
    assessment: ExposureAssessment


@dataclass
class DecisionMaker:
    """The decision-making module of the reference model (Figure 1).

    Combines a :class:`RiskPolicy` with two gates:

    * a minimum trust level below which the party refuses to interact at all,
    * a requirement that the expected utility of the exchange (gain weighted
      by trust minus the planned exposure weighted by distrust) is
      non-negative.
    """

    risk_policy: RiskPolicy
    min_trust: float = 0.0
    require_nonnegative_expected_utility: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_trust <= 1.0:
            raise DecisionError(f"min_trust must lie in [0, 1], got {self.min_trust}")

    def assess(self, trust: float, potential_gain: float) -> ExposureAssessment:
        """Compute the exposure this party accepts for the prospective exchange."""
        exposure = self.risk_policy.accepted_exposure(trust, potential_gain)
        return ExposureAssessment(
            trust=trust, potential_gain=potential_gain, accepted_exposure=exposure
        )

    def assess_many(
        self, trusts: Sequence[float], potential_gains: Sequence[float]
    ) -> np.ndarray:
        """Vector of accepted exposures for a batch of candidate exchanges.

        The batched counterpart of :meth:`assess`, used with trust-score
        vectors read from a :class:`~repro.trust.backend.TrustBackend` to
        screen many prospective partners in one pass.
        """
        return self.risk_policy.accepted_exposures(trusts, potential_gains)

    def decide(
        self,
        trust: float,
        potential_gain: float,
        planned_exposure: float,
    ) -> InteractionDecision:
        """Decide whether to go ahead with an exchange.

        ``planned_exposure`` is the actual maximal partner temptation of the
        planned schedule (e.g. ``max_supplier_temptation`` from the consumer's
        point of view).
        """
        assessment = self.assess(trust, potential_gain)
        expected_utility = trust * potential_gain - (1.0 - trust) * max(
            0.0, planned_exposure
        )
        if trust < self.min_trust:
            return InteractionDecision(
                accept=False,
                reason=f"trust {trust:.3f} below minimum {self.min_trust:.3f}",
                expected_utility=expected_utility,
                assessment=assessment,
            )
        if planned_exposure > assessment.accepted_exposure + 1e-9:
            return InteractionDecision(
                accept=False,
                reason=(
                    f"planned exposure {planned_exposure:.3f} exceeds accepted "
                    f"exposure {assessment.accepted_exposure:.3f}"
                ),
                expected_utility=expected_utility,
                assessment=assessment,
            )
        if self.require_nonnegative_expected_utility and expected_utility < -1e-9:
            return InteractionDecision(
                accept=False,
                reason=f"expected utility {expected_utility:.3f} is negative",
                expected_utility=expected_utility,
                assessment=assessment,
            )
        return InteractionDecision(
            accept=True,
            reason="acceptable exposure and expected utility",
            expected_utility=expected_utility,
            assessment=assessment,
        )
