"""Goods and bundles exchanged between a supplier and a consumer.

The paper's exchange model (Section 2) assumes a *set of goods* being sold
for an overall price ``P``.  Each individual good (an "item") carries two
valuations, both known to both partners:

* ``supplier_cost`` — the supplier's cost for generating and delivering the
  item (the paper's ``Vs(x)``), and
* ``consumer_value`` — what the item is worth to the consumer (``Vc(x)``).

Both valuations are additive over sets of goods, which is the assumption the
original safe-exchange analysis (Sandholm 1996) makes and the one this
library implements throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.numeric import EPSILON, total
from repro.exceptions import InvalidBundleError, InvalidGoodError

__all__ = ["Good", "GoodsBundle"]


@dataclass(frozen=True, order=True)
class Good:
    """A single indivisible item of the traded bundle.

    Attributes
    ----------
    good_id:
        Unique identifier of the item inside its bundle.
    supplier_cost:
        The supplier's cost ``Vs(x)`` for producing and delivering the item.
        Must be non-negative.
    consumer_value:
        The consumer's value ``Vc(x)`` for the item.  Must be non-negative.
    description:
        Optional free-text description (not used by any algorithm).
    """

    good_id: str
    supplier_cost: float
    consumer_value: float
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.good_id:
            raise InvalidGoodError("good_id must be a non-empty string")
        if self.supplier_cost < 0:
            raise InvalidGoodError(
                f"good {self.good_id!r}: supplier_cost must be >= 0, "
                f"got {self.supplier_cost}"
            )
        if self.consumer_value < 0:
            raise InvalidGoodError(
                f"good {self.good_id!r}: consumer_value must be >= 0, "
                f"got {self.consumer_value}"
            )

    @property
    def surplus(self) -> float:
        """Net value created by trading this item (``Vc(x) - Vs(x)``)."""
        return self.consumer_value - self.supplier_cost

    @property
    def deficit(self) -> float:
        """Net value destroyed by trading this item (``Vs(x) - Vc(x)``)."""
        return self.supplier_cost - self.consumer_value

    @property
    def is_surplus_item(self) -> bool:
        """``True`` when the consumer values the item at least at its cost."""
        return self.consumer_value >= self.supplier_cost

    def scaled(self, cost_factor: float = 1.0, value_factor: float = 1.0) -> "Good":
        """Return a copy with both valuations scaled by the given factors."""
        return Good(
            good_id=self.good_id,
            supplier_cost=self.supplier_cost * cost_factor,
            consumer_value=self.consumer_value * value_factor,
            description=self.description,
        )


class GoodsBundle:
    """An immutable collection of :class:`Good` items with unique ids.

    The bundle exposes the aggregate valuations the safety analysis needs:
    total supplier cost, total consumer value and the surplus of the trade.
    Subset views (used to represent the *remaining* goods during an exchange)
    are created with :meth:`subset` and :meth:`without`.
    """

    __slots__ = ("_goods", "_by_id")

    def __init__(self, goods: Iterable[Good]):
        goods_list: List[Good] = list(goods)
        by_id: Dict[str, Good] = {}
        for good in goods_list:
            if not isinstance(good, Good):
                raise InvalidBundleError(
                    f"bundle items must be Good instances, got {type(good)!r}"
                )
            if good.good_id in by_id:
                raise InvalidBundleError(
                    f"duplicate good id {good.good_id!r} in bundle"
                )
            by_id[good.good_id] = good
        self._goods: Tuple[Good, ...] = tuple(goods_list)
        self._by_id: Dict[str, Good] = by_id

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_valuations(
        cls,
        supplier_costs: Sequence[float],
        consumer_values: Sequence[float],
        prefix: str = "good",
    ) -> "GoodsBundle":
        """Build a bundle from two parallel sequences of valuations.

        Ids are generated as ``{prefix}-0``, ``{prefix}-1``, ...
        """
        if len(supplier_costs) != len(consumer_values):
            raise InvalidBundleError(
                "supplier_costs and consumer_values must have the same length"
            )
        goods = [
            Good(
                good_id=f"{prefix}-{index}",
                supplier_cost=float(cost),
                consumer_value=float(value),
            )
            for index, (cost, value) in enumerate(zip(supplier_costs, consumer_values))
        ]
        return cls(goods)

    @classmethod
    def from_pairs(
        cls, pairs: Mapping[str, Tuple[float, float]]
    ) -> "GoodsBundle":
        """Build a bundle from a mapping ``good_id -> (cost, value)``."""
        goods = [
            Good(good_id=good_id, supplier_cost=float(cost), consumer_value=float(value))
            for good_id, (cost, value) in pairs.items()
        ]
        return cls(goods)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._goods)

    def __iter__(self) -> Iterator[Good]:
        return iter(self._goods)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Good):
            return item.good_id in self._by_id and self._by_id[item.good_id] == item
        if isinstance(item, str):
            return item in self._by_id
        return False

    def __getitem__(self, good_id: str) -> Good:
        try:
            return self._by_id[good_id]
        except KeyError:
            raise KeyError(f"no good with id {good_id!r} in bundle") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GoodsBundle):
            return NotImplemented
        return set(self._goods) == set(other._goods)

    def __hash__(self) -> int:
        return hash(frozenset(self._goods))

    def __repr__(self) -> str:
        return (
            f"GoodsBundle(n={len(self)}, Vs={self.total_supplier_cost:.3f}, "
            f"Vc={self.total_consumer_value:.3f})"
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def goods(self) -> Tuple[Good, ...]:
        """The goods of the bundle, in insertion order."""
        return self._goods

    @property
    def good_ids(self) -> Tuple[str, ...]:
        """Ids of the goods, in insertion order."""
        return tuple(good.good_id for good in self._goods)

    def get(self, good_id: str) -> Optional[Good]:
        """Return the good with the given id, or ``None`` if absent."""
        return self._by_id.get(good_id)

    @property
    def is_empty(self) -> bool:
        return not self._goods

    # ------------------------------------------------------------------
    # Aggregate valuations
    # ------------------------------------------------------------------
    @property
    def total_supplier_cost(self) -> float:
        """``Vs`` of the whole bundle: sum of the items' supplier costs."""
        return total(good.supplier_cost for good in self._goods)

    @property
    def total_consumer_value(self) -> float:
        """``Vc`` of the whole bundle: sum of the items' consumer values."""
        return total(good.consumer_value for good in self._goods)

    @property
    def total_surplus(self) -> float:
        """Net value created when the whole bundle is traded."""
        return self.total_consumer_value - self.total_supplier_cost

    @property
    def is_rational_trade(self) -> bool:
        """``True`` when trading the whole bundle creates non-negative surplus."""
        return self.total_surplus >= -EPSILON

    # ------------------------------------------------------------------
    # Subsets
    # ------------------------------------------------------------------
    def subset(self, good_ids: Iterable[str]) -> "GoodsBundle":
        """Return a new bundle containing only the goods with the given ids."""
        ids = list(good_ids)
        missing = [good_id for good_id in ids if good_id not in self._by_id]
        if missing:
            raise InvalidBundleError(f"unknown good ids: {missing}")
        selected = set(ids)
        return GoodsBundle(good for good in self._goods if good.good_id in selected)

    def without(self, good_ids: Iterable[str]) -> "GoodsBundle":
        """Return a new bundle with the goods with the given ids removed."""
        removed = set(good_ids)
        missing = [good_id for good_id in removed if good_id not in self._by_id]
        if missing:
            raise InvalidBundleError(f"unknown good ids: {missing}")
        return GoodsBundle(
            good for good in self._goods if good.good_id not in removed
        )

    def surplus_items(self) -> "GoodsBundle":
        """Goods whose consumer value covers their supplier cost."""
        return GoodsBundle(good for good in self._goods if good.is_surplus_item)

    def deficit_items(self) -> "GoodsBundle":
        """Goods whose supplier cost exceeds their consumer value."""
        return GoodsBundle(good for good in self._goods if not good.is_surplus_item)

    def sorted_by(self, key: str, reverse: bool = False) -> "GoodsBundle":
        """Return a bundle sorted by ``supplier_cost``/``consumer_value``/``surplus``."""
        if key not in {"supplier_cost", "consumer_value", "surplus", "good_id"}:
            raise InvalidBundleError(f"cannot sort goods by {key!r}")
        return GoodsBundle(
            sorted(self._goods, key=lambda good: getattr(good, key), reverse=reverse)
        )
