"""Numeric helpers shared across the core exchange model.

All monetary quantities in the library are plain floats.  Planning and
safety checks repeatedly compare sums of item valuations, so a small absolute
tolerance is used consistently to avoid spurious infeasibility verdicts caused
by floating point rounding.
"""

from __future__ import annotations

from typing import Iterable

#: Absolute tolerance used for all monetary comparisons in the core model.
EPSILON = 1e-9


def approx_le(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a <= b`` up to the absolute tolerance ``eps``."""
    return a <= b + eps


def approx_ge(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a >= b`` up to the absolute tolerance ``eps``."""
    return a >= b - eps


def approx_eq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a == b`` up to the absolute tolerance ``eps``."""
    return abs(a - b) <= eps


def approx_lt(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a < b`` by more than the tolerance ``eps``."""
    return a < b - eps


def approx_gt(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a > b`` by more than the tolerance ``eps``."""
    return a > b + eps


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` into the closed interval ``[lower, upper]``.

    Raises ``ValueError`` when the interval is empty beyond tolerance.
    """
    if lower > upper + EPSILON:
        raise ValueError(f"empty interval: [{lower}, {upper}]")
    if value < lower:
        return lower
    if value > upper:
        return upper
    return value


def non_negative(value: float) -> float:
    """Snap tiny negative rounding artefacts to zero, keep real values."""
    if -EPSILON < value < 0.0:
        return 0.0
    return value


def total(values: Iterable[float]) -> float:
    """Sum ``values`` using :func:`math.fsum` semantics via built-in ``sum``.

    A thin wrapper so that the summation strategy can be changed in one place
    if numerically harder workloads ever require it.
    """
    return float(sum(values))
