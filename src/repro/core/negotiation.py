"""Price negotiation between supplier and consumer.

The paper assumes the partners "agreed about the overall price the consumer
will have to pay".  For the community simulation and the examples we need a
way to produce that agreement.  Two mechanisms are provided:

* :func:`split_surplus_price` — a one-shot rule dividing the trade surplus
  between the two parties according to a share parameter, and
* :class:`AlternatingOffersNegotiation` — a simple alternating-offers
  protocol with concession rates and reserve prices, producing a
  :class:`NegotiationOutcome` (or failing when the reserves do not overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.goods import GoodsBundle
from repro.core.numeric import EPSILON
from repro.core.safety import rational_price_range
from repro.exceptions import NegotiationError

__all__ = [
    "NegotiationOutcome",
    "split_surplus_price",
    "AlternatingOffersNegotiation",
]


@dataclass(frozen=True)
class NegotiationOutcome:
    """Result of a price negotiation."""

    price: float
    rounds: int
    supplier_gain: float
    consumer_gain: float
    offer_history: Tuple[float, ...] = ()

    @property
    def total_surplus(self) -> float:
        return self.supplier_gain + self.consumer_gain


def split_surplus_price(
    bundle: GoodsBundle, supplier_share: float = 0.5
) -> NegotiationOutcome:
    """Price that gives the supplier ``supplier_share`` of the trade surplus.

    ``supplier_share = 0`` prices at the supplier's total cost (all surplus to
    the consumer), ``supplier_share = 1`` prices at the consumer's total value.
    Raises :class:`NegotiationError` when the trade has negative surplus.
    """
    if not 0.0 <= supplier_share <= 1.0:
        raise NegotiationError(
            f"supplier_share must lie in [0, 1], got {supplier_share}"
        )
    try:
        low, high = rational_price_range(bundle)
    except Exception as exc:  # InvalidPriceError
        raise NegotiationError(str(exc)) from exc
    price = low + supplier_share * (high - low)
    return NegotiationOutcome(
        price=price,
        rounds=1,
        supplier_gain=price - low,
        consumer_gain=high - price,
        offer_history=(price,),
    )


@dataclass
class AlternatingOffersNegotiation:
    """A simple alternating-offers protocol over the price.

    The supplier opens at its target (by default the consumer's total value),
    the consumer counters at its target (by default the supplier's total
    cost) and both concede a fixed fraction of the gap towards the opponent's
    last offer each round.  Agreement is reached as soon as one party's offer
    is acceptable to the other (i.e. the offers cross); the agreed price is
    the midpoint of the crossing offers.

    Reserve prices default to the individually rational bounds; negotiation
    fails when they do not overlap or when ``max_rounds`` is exhausted.
    """

    supplier_concession: float = 0.2
    consumer_concession: float = 0.2
    max_rounds: int = 50
    supplier_reserve: Optional[float] = None
    consumer_reserve: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("supplier_concession", "consumer_concession"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise NegotiationError(f"{name} must lie in (0, 1], got {value}")
        if self.max_rounds < 1:
            raise NegotiationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )

    def negotiate(self, bundle: GoodsBundle) -> NegotiationOutcome:
        """Run the protocol for the given bundle."""
        try:
            rational_low, rational_high = rational_price_range(bundle)
        except Exception as exc:  # InvalidPriceError
            raise NegotiationError(str(exc)) from exc
        supplier_reserve = (
            self.supplier_reserve if self.supplier_reserve is not None else rational_low
        )
        consumer_reserve = (
            self.consumer_reserve if self.consumer_reserve is not None else rational_high
        )
        if supplier_reserve > consumer_reserve + EPSILON:
            raise NegotiationError(
                "reserve prices do not overlap: supplier requires at least "
                f"{supplier_reserve:.3f}, consumer pays at most {consumer_reserve:.3f}"
            )

        supplier_offer = max(consumer_reserve, rational_high)
        consumer_offer = min(supplier_reserve, rational_low)
        history: List[float] = []
        for round_index in range(1, self.max_rounds + 1):
            history.extend((supplier_offer, consumer_offer))
            if supplier_offer <= consumer_offer + EPSILON:
                price = (supplier_offer + consumer_offer) / 2.0
                price = min(max(price, supplier_reserve), consumer_reserve)
                return NegotiationOutcome(
                    price=price,
                    rounds=round_index,
                    supplier_gain=price - rational_low,
                    consumer_gain=rational_high - price,
                    offer_history=tuple(history),
                )
            supplier_offer = max(
                supplier_reserve,
                supplier_offer
                - self.supplier_concession * (supplier_offer - consumer_offer),
            )
            consumer_offer = min(
                consumer_reserve,
                consumer_offer
                + self.consumer_concession * (supplier_offer - consumer_offer),
            )
        if supplier_offer <= consumer_offer + EPSILON:
            price = (supplier_offer + consumer_offer) / 2.0
            return NegotiationOutcome(
                price=price,
                rounds=self.max_rounds,
                supplier_gain=price - rational_low,
                consumer_gain=rational_high - price,
                offer_history=tuple(history),
            )
        raise NegotiationError(
            f"no agreement reached within {self.max_rounds} rounds "
            f"(last offers: supplier {supplier_offer:.3f}, "
            f"consumer {consumer_offer:.3f})"
        )
