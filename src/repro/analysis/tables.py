"""Plain-text tables for experiment output.

The benchmark harness prints the regenerated tables in a fixed-width format
(and can emit CSV) so the paper-versus-measured comparison in
``EXPERIMENTS.md`` can be read straight off the benchmark logs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.exceptions import AnalysisError

__all__ = ["Table"]


class Table:
    """A small column-oriented table with text and CSV rendering."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise AnalysisError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise AnalysisError("column names must be unique")
        self._columns: List[str] = list(columns)
        self._rows: List[List[Any]] = []
        self.title = title

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def rows(self) -> List[List[Any]]:
        return [list(row) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row given positionally or by column name."""
        if values and named:
            raise AnalysisError("pass row values positionally or by name, not both")
        if named:
            unknown = set(named) - set(self._columns)
            if unknown:
                raise AnalysisError(f"unknown columns: {sorted(unknown)}")
            row = [named.get(column, "") for column in self._columns]
        else:
            if len(values) != len(self._columns):
                raise AnalysisError(
                    f"expected {len(self._columns)} values, got {len(values)}"
                )
            row = list(values)
        self._rows.append(row)

    def column(self, name: str) -> List[Any]:
        """Values of one column, in row order."""
        if name not in self._columns:
            raise AnalysisError(f"unknown column {name!r}")
        index = self._columns.index(name)
        return [row[index] for row in self._rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering."""
        formatted_rows = [
            [self._format_cell(value) for value in row] for row in self._rows
        ]
        widths = [len(column) for column in self._columns]
        for row in formatted_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            column.ljust(widths[index]) for index, column in enumerate(self._columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in formatted_rows:
            lines.append(
                " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting; cells must not contain commas)."""
        lines = [",".join(self._columns)]
        for row in self._rows:
            lines.append(",".join(self._format_cell(value) for value in row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
