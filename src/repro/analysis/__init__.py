"""Analysis toolkit: statistics, tables, figures and experiment helpers."""

from repro.analysis.experiments import (
    ExperimentRegistry,
    SweepResult,
    replicate,
    sweep,
)
from repro.analysis.figures import Figure, Series
from repro.analysis.stats import SummaryStats, confidence_interval, summarize
from repro.analysis.tables import Table

__all__ = [
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "Table",
    "Series",
    "Figure",
    "SweepResult",
    "sweep",
    "replicate",
    "ExperimentRegistry",
]
