"""Summary statistics with confidence intervals for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import AnalysisError

try:  # pragma: no cover - depends on environment
    from scipy.stats import t as _student_t
except Exception:  # pragma: no cover
    _student_t = None

__all__ = ["SummaryStats", "summarize", "confidence_interval"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and range of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def format(self, precision: int = 3) -> str:
        return (
            f"{self.mean:.{precision}f} ± {self.ci_half_width:.{precision}f} "
            f"(n={self.count})"
        )


def _critical_value(confidence: float, dof: int) -> float:
    """Two-sided critical value (Student t when available, else normal)."""
    if _student_t is not None and dof > 0:
        return float(_student_t.ppf(0.5 + confidence / 2.0, dof))
    # Normal approximation via the inverse error function.
    return math.sqrt(2.0) * _erfinv(confidence)


def _erfinv(value: float) -> float:
    """Winitzki's approximation of the inverse error function."""
    if not -1.0 < value < 1.0:
        raise AnalysisError(f"erfinv argument must lie in (-1, 1), got {value}")
    a = 0.147
    log_term = math.log(1.0 - value * value)
    first = 2.0 / (math.pi * a) + log_term / 2.0
    inside = first * first - log_term / a
    return math.copysign(math.sqrt(math.sqrt(inside) - first), value)


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Two-sided confidence interval for the mean of ``values``."""
    if not values:
        raise AnalysisError("cannot compute a confidence interval of no values")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must lie in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    std_error = math.sqrt(variance / n)
    critical = _critical_value(confidence, n - 1)
    return mean - critical * std_error, mean + critical * std_error


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Summarise a sample (mean, std, min, max, confidence interval)."""
    if not values:
        raise AnalysisError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    else:
        variance = 0.0
    ci_low, ci_high = confidence_interval(values, confidence)
    return SummaryStats(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        ci_low=ci_low,
        ci_high=ci_high,
    )
