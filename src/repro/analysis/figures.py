"""Text rendering of figure data (series) for the benchmark harness.

The designed evaluation contains line "figures" (trust error vs interactions,
welfare vs exposure scale, hops vs network size, welfare over rounds).  The
benchmarks print each figure both as a data table (x, one column per series)
and as a crude ASCII chart, so the shape of the curves can be inspected
without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError

__all__ = ["Series", "Figure"]


@dataclass
class Series:
    """One labelled line of a figure."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise AnalysisError("xs and ys must have the same length")

    def add(self, x: float, y: float) -> None:
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)


class Figure:
    """A set of series sharing an x axis."""

    def __init__(self, title: str, x_label: str = "x", y_label: str = "y"):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._series: List[Series] = []

    def add_series(self, series: Series) -> None:
        self._series.append(series)

    def new_series(self, label: str) -> Series:
        series = Series(label=label)
        self._series.append(series)
        return series

    @property
    def series(self) -> List[Series]:
        return list(self._series)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_table(self) -> str:
        """Render the figure data as an aligned text table."""
        if not self._series:
            raise AnalysisError("figure has no series")
        xs = sorted({x for series in self._series for x in series.xs})
        header = [self.x_label] + [series.label for series in self._series]
        rows: List[List[str]] = []
        for x in xs:
            row = [f"{x:g}"]
            for series in self._series:
                lookup = dict(zip(series.xs, series.ys))
                row.append(f"{lookup[x]:.4f}" if x in lookup else "")
            rows.append(row)
        widths = [len(cell) for cell in header]
        for row in rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(header))
        )
        lines.append("-+-".join("-" * width for width in widths))
        for row in rows:
            lines.append(
                " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def render_ascii(self, width: int = 60, height: int = 15) -> str:
        """Render a crude ASCII chart of all series."""
        if not self._series or all(len(series) == 0 for series in self._series):
            raise AnalysisError("figure has no data to plot")
        if width < 10 or height < 5:
            raise AnalysisError("chart dimensions too small")
        all_x = [x for series in self._series for x in series.xs]
        all_y = [y for series in self._series for y in series.ys]
        x_min, x_max = min(all_x), max(all_x)
        y_min, y_max = min(all_y), max(all_y)
        x_span = (x_max - x_min) or 1.0
        y_span = (y_max - y_min) or 1.0
        grid = [[" " for _ in range(width)] for _ in range(height)]
        markers = "*o+x#@%&"
        for series_index, series in enumerate(self._series):
            marker = markers[series_index % len(markers)]
            for x, y in zip(series.xs, series.ys):
                column = int(round((x - x_min) / x_span * (width - 1)))
                row = int(round((y - y_min) / y_span * (height - 1)))
                grid[height - 1 - row][column] = marker
        lines = [f"{self.title}  ({self.y_label} vs {self.x_label})"]
        lines.append(f"{y_max:10.3f} +" + "".join(grid[0]))
        for row_cells in grid[1:-1]:
            lines.append(" " * 11 + "|" + "".join(row_cells))
        lines.append(f"{y_min:10.3f} +" + "".join(grid[-1]))
        lines.append(" " * 12 + f"{x_min:<10g}" + " " * max(0, width - 20) + f"{x_max:>10g}")
        legend = "  ".join(
            f"{markers[index % len(markers)]} {series.label}"
            for index, series in enumerate(self._series)
        )
        lines.append("legend: " + legend)
        return "\n".join(lines)

    def render(self, ascii_chart: bool = True) -> str:
        """Full rendering: data table plus (optionally) the ASCII chart."""
        parts = [self.render_table()]
        if ascii_chart:
            parts.append(self.render_ascii())
        return "\n\n".join(parts)

    def series_by_label(self, label: str) -> Series:
        for series in self._series:
            if series.label == label:
                return series
        raise AnalysisError(f"no series labelled {label!r}")
