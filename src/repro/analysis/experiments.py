"""Helpers for running parameter sweeps and replicated experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from repro.analysis.stats import SummaryStats, summarize
from repro.exceptions import AnalysisError

__all__ = ["SweepResult", "sweep", "replicate", "ExperimentRegistry"]

T = TypeVar("T")


@dataclass(frozen=True)
class SweepResult:
    """Result of evaluating a function over a parameter grid."""

    parameter_name: str
    values: Tuple[Any, ...]
    results: Tuple[Any, ...]

    def as_pairs(self) -> List[Tuple[Any, Any]]:
        return list(zip(self.values, self.results))


def sweep(
    parameter_name: str,
    values: Sequence[Any],
    fn: Callable[[Any], T],
) -> SweepResult:
    """Evaluate ``fn`` for every parameter value, preserving order."""
    if not values:
        raise AnalysisError("sweep requires at least one parameter value")
    results = tuple(fn(value) for value in values)
    return SweepResult(
        parameter_name=parameter_name, values=tuple(values), results=results
    )


def replicate(
    fn: Callable[[int], float], seeds: Iterable[int], confidence: float = 0.95
) -> SummaryStats:
    """Run ``fn(seed)`` for every seed and summarise the scalar results."""
    values = [float(fn(seed)) for seed in seeds]
    if not values:
        raise AnalysisError("replicate requires at least one seed")
    return summarize(values, confidence=confidence)


class ExperimentRegistry:
    """A tiny registry mapping experiment ids to callables producing output.

    Used by the benchmark harness to keep the per-table/figure entry points
    discoverable programmatically (e.g. for regenerating EXPERIMENTS.md).
    """

    def __init__(self) -> None:
        self._experiments: Dict[str, Callable[[], Any]] = {}
        self._descriptions: Dict[str, str] = {}

    def register(
        self, experiment_id: str, description: str
    ) -> Callable[[Callable[[], Any]], Callable[[], Any]]:
        """Decorator registering an experiment entry point."""

        def decorator(fn: Callable[[], Any]) -> Callable[[], Any]:
            if experiment_id in self._experiments:
                raise AnalysisError(f"experiment {experiment_id!r} already registered")
            self._experiments[experiment_id] = fn
            self._descriptions[experiment_id] = description
            return fn

        return decorator

    def run(self, experiment_id: str) -> Any:
        if experiment_id not in self._experiments:
            raise AnalysisError(f"unknown experiment {experiment_id!r}")
        return self._experiments[experiment_id]()

    def ids(self) -> List[str]:
        return sorted(self._experiments)

    def description(self, experiment_id: str) -> str:
        if experiment_id not in self._descriptions:
            raise AnalysisError(f"unknown experiment {experiment_id!r}")
        return self._descriptions[experiment_id]
