"""A single P-Grid peer: path, routing table and local data store.

Every peer is responsible for the binary keys that start with its *path*.
For each level ``i`` of its path it keeps references to peers whose path
agrees on the first ``i - 1`` bits and differs at bit ``i`` — the peers that
cover the "other half" of the key space at that level.  Routing a query
therefore resolves one bit per hop, giving ``O(log n)`` search cost, which
Figure 4 of the designed evaluation measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.pgrid.keyspace import is_prefix, validate_binary

__all__ = ["PGridPeer"]

#: Maximum number of references kept per routing level.
DEFAULT_MAX_REFERENCES = 4


@dataclass
class PGridPeer:
    """State of one peer participating in the P-Grid.

    Attributes
    ----------
    peer_id:
        Unique identifier of the peer.
    path:
        The binary prefix the peer is responsible for ("" initially).
    max_references:
        Cap on the number of references kept per routing level.
    tamper_hook:
        Optional function applied to the values the peer returns when
        answering queries — used to model dishonest storage peers that forge
        reputation data.  ``None`` models an honest peer.
    """

    peer_id: str
    path: str = ""
    max_references: int = DEFAULT_MAX_REFERENCES
    tamper_hook: Optional[Callable[[str, List[str]], List[str]]] = None
    _routing: Dict[int, List[str]] = field(default_factory=dict, repr=False)
    _data: Dict[str, List[str]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.peer_id:
            raise StorageError("peer_id must be non-empty")
        validate_binary(self.path, "path")
        if self.max_references < 1:
            raise StorageError(
                f"max_references must be >= 1, got {self.max_references}"
            )

    # ------------------------------------------------------------------
    # Responsibility and routing table
    # ------------------------------------------------------------------
    def is_responsible_for(self, key: str) -> bool:
        """Whether the peer's path is a prefix of the (binary) key."""
        return is_prefix(self.path, key)

    def add_reference(self, level: int, peer_id: str) -> None:
        """Remember ``peer_id`` as covering the complement subtree at ``level``.

        Levels are 1-based: level ``i`` refers to peers whose path shares the
        first ``i - 1`` bits of this peer's path and differs at bit ``i``.
        """
        if level < 1:
            raise StorageError(f"routing level must be >= 1, got {level}")
        if peer_id == self.peer_id:
            return
        refs = self._routing.setdefault(level, [])
        if peer_id in refs:
            return
        refs.append(peer_id)
        if len(refs) > self.max_references:
            del refs[0]

    def references(self, level: int) -> Tuple[str, ...]:
        """References stored for the given (1-based) level."""
        return tuple(self._routing.get(level, ()))

    def all_references(self) -> Dict[int, Tuple[str, ...]]:
        return {level: tuple(refs) for level, refs in self._routing.items()}

    def pick_reference(self, level: int, rng: Optional[random.Random] = None) -> Optional[str]:
        """A (random) reference for the given level, or ``None`` if none known."""
        refs = self._routing.get(level)
        if not refs:
            return None
        if rng is None:
            return refs[0]
        return rng.choice(refs)

    def routing_levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self._routing.keys()))

    # ------------------------------------------------------------------
    # Local data store
    # ------------------------------------------------------------------
    def store_local(self, key: str, value: str) -> None:
        """Store a value under a binary key (regardless of responsibility)."""
        validate_binary(key, "key")
        self._data.setdefault(key, []).append(value)

    def retrieve_local(self, key: str) -> List[str]:
        """Values stored locally under the key, after the tamper hook (if any)."""
        validate_binary(key, "key")
        values = list(self._data.get(key, []))
        if self.tamper_hook is not None:
            values = list(self.tamper_hook(key, values))
        return values

    def retrieve_local_untampered(self, key: str) -> List[str]:
        """Values stored locally under the key, bypassing the tamper hook."""
        validate_binary(key, "key")
        return list(self._data.get(key, []))

    def stored_keys(self) -> Tuple[str, ...]:
        return tuple(self._data.keys())

    def misplaced_keys(self) -> Tuple[str, ...]:
        """Keys stored locally that the peer is no longer responsible for."""
        return tuple(
            key for key in self._data if not self.is_responsible_for(key)
        )

    def pop_key(self, key: str) -> List[str]:
        """Remove and return all values stored under the key."""
        validate_binary(key, "key")
        return self._data.pop(key, [])

    def data_size(self) -> int:
        """Total number of values stored locally."""
        return sum(len(values) for values in self._data.values())
