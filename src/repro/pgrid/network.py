"""The P-Grid network façade: insert and query with cost accounting.

:class:`PGridNetwork` ties the peers, construction, routing and replication
together and exposes the two operations the reputation layer needs —
``insert(application_key, value)`` and ``query(application_key)`` — while
counting hops and messages so the scalability experiment (Figure 4) can
report routing cost against network size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.pgrid.construction import bootstrap_by_exchanges, build_balanced
from repro.pgrid.keyspace import DEFAULT_KEY_BITS, hash_to_bits
from repro.pgrid.node import PGridPeer
from repro.pgrid.replication import replica_groups, replicas_for_key, replication_factor
from repro.pgrid.routing import RouteResult, route

__all__ = ["QueryResult", "InsertResult", "NetworkStats", "PGridNetwork"]


@dataclass(frozen=True)
class QueryResult:
    """Result of querying the network for an application key."""

    key: str
    values: Tuple[str, ...]
    success: bool
    hops: int
    messages: int
    responder_id: Optional[str]


@dataclass(frozen=True)
class InsertResult:
    """Result of inserting a value: where it ended up and at what cost."""

    key: str
    stored_on: Tuple[str, ...]
    success: bool
    hops: int
    messages: int


@dataclass
class NetworkStats:
    """Cumulative operation counters of a network instance."""

    inserts: int = 0
    queries: int = 0
    failed_operations: int = 0
    total_hops: int = 0
    total_messages: int = 0

    def record(self, hops: int, messages: int, success: bool, query: bool) -> None:
        if query:
            self.queries += 1
        else:
            self.inserts += 1
        if not success:
            self.failed_operations += 1
        self.total_hops += hops
        self.total_messages += messages

    @property
    def mean_hops(self) -> float:
        operations = self.inserts + self.queries
        if operations == 0:
            return 0.0
        return self.total_hops / operations


class PGridNetwork:
    """A set of P-Grid peers with routing-based insert and query operations."""

    def __init__(
        self,
        peer_ids: Iterable[str],
        key_bits: int = DEFAULT_KEY_BITS,
        seed: Optional[int] = None,
        replicate_inserts: bool = True,
    ):
        ids = list(peer_ids)
        if len(set(ids)) != len(ids):
            raise StorageError("peer ids must be unique")
        self._peers: Dict[str, PGridPeer] = {
            peer_id: PGridPeer(peer_id=peer_id) for peer_id in ids
        }
        self._key_bits = key_bits
        self._rng = random.Random(seed)
        self._replicate_inserts = replicate_inserts
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    @property
    def peers(self) -> Dict[str, PGridPeer]:
        return self._peers

    def peer(self, peer_id: str) -> PGridPeer:
        try:
            return self._peers[peer_id]
        except KeyError:
            raise StorageError(f"unknown peer {peer_id!r}") from None

    def __len__(self) -> int:
        return len(self._peers)

    def add_peer(self, peer_id: str) -> PGridPeer:
        """Add a fresh peer (empty path) to the network."""
        if peer_id in self._peers:
            raise StorageError(f"peer {peer_id!r} already exists")
        peer = PGridPeer(peer_id=peer_id)
        self._peers[peer_id] = peer
        return peer

    def remove_peer(self, peer_id: str) -> None:
        """Remove a peer (churn); its locally stored data is lost."""
        self._peers.pop(peer_id, None)

    def set_tamper_hook(self, peer_id: str, hook) -> None:
        """Install a tampering hook on a peer (models dishonest storage)."""
        self.peer(peer_id).tamper_hook = hook

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(
        self,
        strategy: str = "balanced",
        rounds: Optional[int] = None,
        depth: Optional[int] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        """Construct the trie with the chosen strategy.

        ``strategy`` is either ``"balanced"`` (deterministic, fully populated
        routing tables) or ``"exchange"`` (decentralised random pairwise
        bootstrap).
        """
        if strategy == "balanced":
            build_balanced(self._peers, depth=depth, rng=self._rng)
        elif strategy == "exchange":
            bootstrap_by_exchanges(
                self._peers, rounds=rounds, rng=self._rng, max_depth=max_depth
            )
        else:
            raise StorageError(f"unknown construction strategy {strategy!r}")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def binary_key(self, application_key: str) -> str:
        return hash_to_bits(application_key, self._key_bits)

    def _random_start(self) -> str:
        return self._rng.choice(list(self._peers.keys()))

    def insert(
        self, application_key: str, value: str, from_peer: Optional[str] = None
    ) -> InsertResult:
        """Store a value under an application key on the responsible peer(s)."""
        if not self._peers:
            raise StorageError("cannot insert into an empty network")
        key = self.binary_key(application_key)
        start = from_peer if from_peer is not None else self._random_start()
        result = route(self._peers, start, key, rng=self._rng)
        stored_on: List[str] = []
        messages = result.messages
        if result.success and result.responsible_peer_id is not None:
            responsible = self.peer(result.responsible_peer_id)
            responsible.store_local(key, value)
            stored_on.append(responsible.peer_id)
            if self._replicate_inserts:
                for replica_id in replicas_for_key(self._peers, key):
                    if replica_id == responsible.peer_id:
                        continue
                    self.peer(replica_id).store_local(key, value)
                    stored_on.append(replica_id)
                    messages += 1
        self.stats.record(result.hops, messages, result.success, query=False)
        return InsertResult(
            key=key,
            stored_on=tuple(stored_on),
            success=result.success,
            hops=result.hops,
            messages=messages,
        )

    def query(
        self, application_key: str, from_peer: Optional[str] = None
    ) -> QueryResult:
        """Fetch the values stored under an application key (single replica)."""
        if not self._peers:
            raise StorageError("cannot query an empty network")
        key = self.binary_key(application_key)
        start = from_peer if from_peer is not None else self._random_start()
        result = route(self._peers, start, key, rng=self._rng)
        values: Tuple[str, ...] = ()
        responder: Optional[str] = None
        if result.success and result.responsible_peer_id is not None:
            responder = result.responsible_peer_id
            values = tuple(self.peer(responder).retrieve_local(key))
        self.stats.record(result.hops, result.messages, result.success, query=True)
        return QueryResult(
            key=key,
            values=values,
            success=result.success,
            hops=result.hops,
            messages=result.messages,
            responder_id=responder,
        )

    def query_replicas(
        self, application_key: str, max_replicas: Optional[int] = None
    ) -> List[QueryResult]:
        """Query every replica responsible for the key separately.

        Used by the complaint-based trust model to cross-check potentially
        forged reports; each per-replica answer is returned unmerged.
        """
        key = self.binary_key(application_key)
        replica_ids = list(replicas_for_key(self._peers, key))
        if max_replicas is not None:
            replica_ids = replica_ids[:max_replicas]
        results: List[QueryResult] = []
        for replica_id in replica_ids:
            values = tuple(self.peer(replica_id).retrieve_local(key))
            # Reaching a specific replica costs a normal routed lookup; use
            # the mean routing cost estimate of one hop per path bit.
            hops = len(self.peer(replica_id).path)
            self.stats.record(hops, hops, True, query=True)
            results.append(
                QueryResult(
                    key=key,
                    values=values,
                    success=True,
                    hops=hops,
                    messages=hops,
                    responder_id=replica_id,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def replica_groups(self) -> Dict[str, Tuple[str, ...]]:
        return replica_groups(self._peers)

    def replication_factor(self) -> float:
        return replication_factor(self._peers)

    def total_stored_values(self) -> int:
        return sum(peer.data_size() for peer in self._peers.values())
