"""Constructing the P-Grid trie.

Two construction strategies are provided:

* :func:`bootstrap_by_exchanges` — the decentralised bootstrap of the
  original P-Grid work: peers meet pairwise at random and refine their paths
  (splitting the key space between them) while exchanging routing
  references.  This is what a real deployment would run and what the
  community simulation uses.
* :func:`build_balanced` — a deterministic, perfectly balanced assignment of
  paths and fully populated routing tables.  Useful for unit tests and for
  the scalability benchmark, where the quantity of interest is the routing
  cost on a well-formed trie rather than the convergence of the bootstrap.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import StorageError
from repro.pgrid.keyspace import common_prefix_length, flip_bit
from repro.pgrid.node import PGridPeer

__all__ = ["exchange", "bootstrap_by_exchanges", "build_balanced"]


def exchange(
    peer_a: PGridPeer,
    peer_b: PGridPeer,
    max_depth: int = 12,
) -> None:
    """One pairwise P-Grid exchange between two peers.

    Depending on how the peers' paths relate, they either split a common
    prefix (both specialise by one complementary bit), one of them
    specialises below the other, or — when their paths already diverge —
    they simply learn each other as routing references for the level of
    divergence.  Data that no longer matches a refined path is handed over
    to the partner when the partner became responsible for it.
    """
    prefix = common_prefix_length(peer_a.path, peer_b.path)
    len_a, len_b = len(peer_a.path), len(peer_b.path)

    if len_a == prefix and len_b == prefix:
        # Identical paths: split the subtree if allowed to go deeper.
        if len_a >= max_depth:
            return
        peer_a.path += "0"
        peer_b.path += "1"
        peer_a.add_reference(len(peer_a.path), peer_b.peer_id)
        peer_b.add_reference(len(peer_b.path), peer_a.peer_id)
    elif len_a == prefix:
        # peer_a's path is a proper prefix of peer_b's: peer_a specialises to
        # the complementary subtree of peer_b's next bit.
        if len_a >= max_depth:
            return
        next_bit = peer_b.path[prefix]
        peer_a.path += flip_bit(next_bit)
        peer_a.add_reference(len(peer_a.path), peer_b.peer_id)
        peer_b.add_reference(prefix + 1, peer_a.peer_id)
    elif len_b == prefix:
        if len_b >= max_depth:
            return
        next_bit = peer_a.path[prefix]
        peer_b.path += flip_bit(next_bit)
        peer_b.add_reference(len(peer_b.path), peer_a.peer_id)
        peer_a.add_reference(prefix + 1, peer_b.peer_id)
    else:
        # Paths diverge: learn each other as references at the divergence level.
        peer_a.add_reference(prefix + 1, peer_b.peer_id)
        peer_b.add_reference(prefix + 1, peer_a.peer_id)

    _hand_over_misplaced(peer_a, peer_b)
    _hand_over_misplaced(peer_b, peer_a)


def _hand_over_misplaced(source: PGridPeer, target: PGridPeer) -> None:
    """Move keys the source is no longer responsible for to a responsible target."""
    for key in source.misplaced_keys():
        if target.is_responsible_for(key):
            for value in source.pop_key(key):
                target.store_local(key, value)


def bootstrap_by_exchanges(
    peers: Mapping[str, PGridPeer],
    rounds: Optional[int] = None,
    rng: Optional[random.Random] = None,
    max_depth: Optional[int] = None,
) -> int:
    """Run random pairwise exchanges until the trie is (probably) refined.

    Returns the number of exchanges performed.  ``rounds`` defaults to
    ``10 * n * log2(n)`` pairwise meetings, which in practice refines the
    paths of communities of the sizes used in the experiments; ``max_depth``
    defaults to ``ceil(log2(n)) + 2``.
    """
    peer_list = list(peers.values())
    if len(peer_list) < 2:
        return 0
    generator = rng if rng is not None else random.Random(0)
    n = len(peer_list)
    if rounds is None:
        rounds = int(10 * n * max(1.0, math.log2(n)))
    if max_depth is None:
        max_depth = int(math.ceil(math.log2(n))) + 2
    for _ in range(rounds):
        peer_a, peer_b = generator.sample(peer_list, 2)
        exchange(peer_a, peer_b, max_depth=max_depth)
    return rounds


def build_balanced(
    peers: Mapping[str, PGridPeer],
    depth: Optional[int] = None,
    references_per_level: int = 2,
    rng: Optional[random.Random] = None,
) -> int:
    """Assign balanced paths and fully populate routing tables.

    Peers are assigned paths of length ``depth`` (default ``floor(log2(n))``)
    round-robin over the ``2**depth`` leaves, so peers sharing a leaf become
    replicas.  Every peer then receives up to ``references_per_level``
    references per level, chosen among the peers covering the complementary
    subtree.  Returns the depth used.
    """
    peer_list = list(peers.values())
    if not peer_list:
        return 0
    n = len(peer_list)
    if depth is None:
        depth = max(1, int(math.floor(math.log2(n)))) if n > 1 else 0
    if depth < 0:
        raise StorageError(f"depth must be >= 0, got {depth}")
    generator = rng if rng is not None else random.Random(0)

    leaves = [format(index, f"0{depth}b") if depth > 0 else "" for index in range(2 ** depth)]
    for index, peer in enumerate(peer_list):
        peer.path = leaves[index % len(leaves)]

    # Group peers by the subtree they cover at each level for reference filling.
    by_prefix: Dict[str, List[PGridPeer]] = {}
    for peer in peer_list:
        for level in range(1, len(peer.path) + 1):
            by_prefix.setdefault(peer.path[:level], []).append(peer)

    for peer in peer_list:
        for level in range(1, len(peer.path) + 1):
            complement = peer.path[: level - 1] + flip_bit(peer.path[level - 1])
            candidates = by_prefix.get(complement, [])
            if not candidates:
                continue
            chosen = candidates
            if len(candidates) > references_per_level:
                chosen = generator.sample(candidates, references_per_level)
            for other in chosen:
                peer.add_reference(level, other.peer_id)
    return depth
