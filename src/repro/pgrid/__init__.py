"""P-Grid substrate: decentralised binary-trie storage for reputation data.

This package reimplements, at simulation fidelity, the peer-to-peer access
structure that Aberer & Despotovic (CIKM 2001) use to store complaint data:
peers partition a binary key space by pairwise exchanges, keep per-level
routing references and answer prefix-routed queries in a logarithmic number
of hops.  Replicas (peers sharing a path) provide the redundancy the
complaint-based trust model relies on to tolerate lying storage peers.
"""

from repro.pgrid.construction import bootstrap_by_exchanges, build_balanced, exchange
from repro.pgrid.keyspace import (
    DEFAULT_KEY_BITS,
    common_prefix_length,
    flip_bit,
    hash_to_bits,
    is_prefix,
    validate_binary,
)
from repro.pgrid.network import InsertResult, NetworkStats, PGridNetwork, QueryResult
from repro.pgrid.node import PGridPeer
from repro.pgrid.replication import (
    replica_groups,
    replicas_for_key,
    replication_factor,
)
from repro.pgrid.routing import RouteResult, route

__all__ = [
    "DEFAULT_KEY_BITS",
    "hash_to_bits",
    "common_prefix_length",
    "is_prefix",
    "flip_bit",
    "validate_binary",
    "PGridPeer",
    "RouteResult",
    "route",
    "exchange",
    "bootstrap_by_exchanges",
    "build_balanced",
    "replica_groups",
    "replicas_for_key",
    "replication_factor",
    "QueryResult",
    "InsertResult",
    "NetworkStats",
    "PGridNetwork",
]
