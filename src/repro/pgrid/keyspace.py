"""Binary key space helpers for the P-Grid substrate.

P-Grid organises peers in a virtual binary trie: every peer is responsible
for the keys sharing a binary *path* (prefix).  Application keys (e.g. the
agent identifier a complaint is about) are mapped to fixed-length binary
strings by hashing.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.exceptions import RoutingError

__all__ = [
    "DEFAULT_KEY_BITS",
    "hash_to_bits",
    "common_prefix_length",
    "is_prefix",
    "flip_bit",
    "validate_binary",
]

#: Number of bits used for hashed application keys.
DEFAULT_KEY_BITS = 16


def validate_binary(value: str, name: str = "key") -> str:
    """Ensure ``value`` is a (possibly empty) binary string and return it."""
    if any(char not in "01" for char in value):
        raise RoutingError(f"{name} must be a binary string, got {value!r}")
    return value


def hash_to_bits(key: str, bits: int = DEFAULT_KEY_BITS) -> str:
    """Hash an application key to a binary string of the given length."""
    if bits <= 0:
        raise RoutingError(f"bits must be positive, got {bits}")
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    as_int = int.from_bytes(digest, "big")
    total_bits = len(digest) * 8
    if bits > total_bits:
        raise RoutingError(f"at most {total_bits} bits supported, got {bits}")
    return format(as_int >> (total_bits - bits), f"0{bits}b")


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix of two binary strings."""
    validate_binary(a, "a")
    validate_binary(b, "b")
    length = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b:
            break
        length += 1
    return length


def is_prefix(prefix: str, key: str) -> bool:
    """Whether ``prefix`` is a prefix of ``key`` (empty prefix matches all)."""
    validate_binary(prefix, "prefix")
    validate_binary(key, "key")
    return key.startswith(prefix)


def flip_bit(bit: str) -> str:
    """Complement a single bit character."""
    if bit == "0":
        return "1"
    if bit == "1":
        return "0"
    raise RoutingError(f"expected a single bit, got {bit!r}")
