"""Replication helpers: peers sharing a path are replicas of each other."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.pgrid.keyspace import validate_binary
from repro.pgrid.node import PGridPeer

__all__ = ["replica_groups", "replicas_for_key", "replication_factor"]


def replica_groups(peers: Mapping[str, PGridPeer]) -> Dict[str, Tuple[str, ...]]:
    """Group peer ids by the path they are responsible for."""
    groups: Dict[str, List[str]] = {}
    for peer in peers.values():
        groups.setdefault(peer.path, []).append(peer.peer_id)
    return {path: tuple(sorted(ids)) for path, ids in groups.items()}


def replicas_for_key(
    peers: Mapping[str, PGridPeer], key: str
) -> Tuple[str, ...]:
    """Ids of every peer responsible for the given binary key."""
    validate_binary(key, "key")
    return tuple(
        sorted(
            peer.peer_id
            for peer in peers.values()
            if peer.is_responsible_for(key)
        )
    )


def replication_factor(peers: Mapping[str, PGridPeer]) -> float:
    """Average number of replicas per occupied path (1.0 means no replication)."""
    groups = replica_groups(peers)
    if not groups:
        return 0.0
    return sum(len(ids) for ids in groups.values()) / len(groups)
