"""Prefix routing over the P-Grid trie."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.exceptions import RoutingError
from repro.pgrid.keyspace import common_prefix_length, validate_binary
from repro.pgrid.node import PGridPeer

__all__ = ["RouteResult", "route"]

#: Safety bound on the number of hops before a route is declared failed.
DEFAULT_MAX_HOPS = 64


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing a key from a start peer."""

    success: bool
    responsible_peer_id: Optional[str]
    hops: int
    visited: Tuple[str, ...]

    @property
    def messages(self) -> int:
        """Number of messages sent (one per hop)."""
        return self.hops


def route(
    peers: Mapping[str, PGridPeer],
    start_id: str,
    key: str,
    rng: Optional[random.Random] = None,
    max_hops: int = DEFAULT_MAX_HOPS,
) -> RouteResult:
    """Route ``key`` from ``start_id`` to a peer responsible for it.

    Each hop resolves at least one further bit of the key by following the
    routing reference for the first level at which the current peer's path
    disagrees with the key.  The route fails when a needed reference is
    missing or when ``max_hops`` is exceeded.
    """
    validate_binary(key, "key")
    if start_id not in peers:
        raise RoutingError(f"unknown start peer {start_id!r}")
    current = peers[start_id]
    visited = [current.peer_id]
    hops = 0
    while hops <= max_hops:
        if current.is_responsible_for(key):
            return RouteResult(
                success=True,
                responsible_peer_id=current.peer_id,
                hops=hops,
                visited=tuple(visited),
            )
        # The peer's path and the key disagree at some position < len(path);
        # the reference at that (1-based) level covers the right subtree.
        divergence = common_prefix_length(current.path, key)
        level = divergence + 1
        next_id = current.pick_reference(level, rng)
        if next_id is None or next_id not in peers:
            return RouteResult(
                success=False,
                responsible_peer_id=None,
                hops=hops,
                visited=tuple(visited),
            )
        current = peers[next_id]
        visited.append(current.peer_id)
        hops += 1
    return RouteResult(
        success=False, responsible_peer_id=None, hops=hops, visited=tuple(visited)
    )
