"""Dependency-free metrics registry: counters, gauges, histograms, spans.

Design constraints, in order of priority:

* **Zero cost when off.**  Instrumented call sites hold a registry
  reference (``NULL_REGISTRY`` by default) and either call its no-op
  methods or guard hot blocks with ``if registry.enabled``.  The null
  registry allocates nothing per call — ``span`` hands back one shared
  context-manager singleton.
* **Deterministic artifacts.**  ``snapshot()`` segregates its output
  into a ``metrics`` section (counters, gauges, histogram bucket
  shapes — functions of the seeded run alone, byte-identical across
  reruns) and a ``timings`` section (monotonic-clock aggregates, never
  compared) — the same convention the ``BENCH_*.json`` files use for
  their non-compared wall-clock fields.
* **One snapshot for the whole run.**  Existing ad-hoc counters are not
  migrated; they are *re-homed* as registry views (``add_view``) that
  are read at snapshot time, so the legacy attribute APIs keep working
  and a single ``registry.snapshot()`` reports the full pipeline.

Stdlib only — this module must stay importable from every layer of
``repro`` without creating cycles.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "create_registry",
]

#: Power-of-two volume buckets — a good default for batch sizes and
#: scatter/gather fan-out counts, which is what the pipeline observes.
DEFAULT_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Histogram:
    """A fixed-bucket histogram (cumulative shape is deterministic).

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    def snapshot(self) -> Dict[str, Any]:
        total = self.total
        if isinstance(total, float) and total.is_integer():
            total = int(total)
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": total,
        }


class _Span:
    """One nested timing span; records into the registry's timing table."""

    __slots__ = ("_registry", "_name", "_tags", "_path", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str, tags: Dict[str, Any]) -> None:
        self._registry = registry
        self._name = name
        self._tags = tags
        self._path = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        registry = self._registry
        stack = registry._span_stack
        if stack:
            self._path = stack[-1] + "/" + self._name
        stack.append(self._path)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        elapsed = time.perf_counter() - self._started
        registry = self._registry
        registry._span_stack.pop()
        registry.observe_seconds(self._path, elapsed)
        if registry._trace is not None:
            event: Dict[str, Any] = {"event": "span", "name": self._path, "seconds": elapsed}
            if self._tags:
                event["tags"] = self._tags
            registry._trace.append(event)
        return False


class _NullSpan:
    """Shared no-op context manager handed out by the null registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRegistry:
    """The ``telemetry=off`` recorder: every operation is a no-op.

    Call sites may invoke methods unconditionally (each is a cheap
    attribute lookup plus an empty call) or skip whole instrumentation
    blocks behind ``if registry.enabled``.
    """

    enabled = False
    mode = "off"

    __slots__ = ()

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def gauge_max(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        return None

    def observe_seconds(self, name: str, seconds: float) -> None:
        return None

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_view(self, prefix: str, provider: Callable[[], Dict[str, Any]]) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {"metrics": {}, "timings": {}}

    def write_jsonl(self, path: str) -> None:
        return None


#: The shared off-switch; ``is NULL_REGISTRY`` identifies "telemetry off".
NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Namespaced counters, gauges, histograms, spans, and views.

    Names are dotted (``evidence.entries_emitted``,
    ``worker.rpc.in_flight.max``).  Span paths nest with ``/`` so a
    trace of ``exchange.round`` containing ``backend.update_many``
    aggregates under ``exchange.round/backend.update_many``.
    """

    enabled = True

    def __init__(self, mode: str = "summary", trace: bool = False) -> None:
        self.mode = mode
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timings: Dict[str, Dict[str, float]] = {}
        self._views: List[Tuple[str, Callable[[], Dict[str, Any]]]] = []
        self._span_stack: List[str] = []
        self._trace: Optional[List[Dict[str, Any]]] = [] if trace else None

    # -- recording ------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """High-water-mark gauge (e.g. peak in-flight RPC depth)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(buckets)
        histogram.observe(value)

    def observe_seconds(self, name: str, seconds: float) -> None:
        """Aggregate a wall-clock duration into the (non-compared) timings."""
        entry = self._timings.get(name)
        if entry is None:
            self._timings[name] = {"count": 1, "total_seconds": seconds}
        else:
            entry["count"] += 1
            entry["total_seconds"] += seconds

    def span(self, name: str, **tags: Any) -> _Span:
        return _Span(self, name, tags)

    # -- views ----------------------------------------------------------

    def add_view(self, prefix: str, provider: Callable[[], Dict[str, Any]]) -> None:
        """Re-home an existing counter object under ``prefix``.

        ``provider`` is called at snapshot time and returns a flat dict;
        keys containing ``seconds`` are routed into the ``timings``
        section (they come from monotonic clocks), everything else into
        ``metrics``.  The authoritative state stays wherever it lives
        today — views read, never copy.
        """
        self._views.append((prefix, provider))

    # -- output ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The full run in one dict: ``{"metrics": ..., "timings": ...}``.

        The ``metrics`` section is deterministic for a seeded run; the
        ``timings`` section holds monotonic aggregates and must never be
        compared across runs (same convention as ``BENCH_*.json``).
        """
        metrics: Dict[str, Any] = {}
        timings: Dict[str, Any] = {}
        metrics.update(self._counters)
        metrics.update(self._gauges)
        for name, histogram in self._histograms.items():
            metrics[name] = histogram.snapshot()
        for name, entry in self._timings.items():
            timings[name] = dict(entry)
        for prefix, provider in self._views:
            for key, value in provider().items():
                qualified = prefix + "." + key if prefix else key
                if "seconds" in key:
                    timings[qualified] = value
                else:
                    metrics[qualified] = value
        return {
            "metrics": {key: metrics[key] for key in sorted(metrics)},
            "timings": {key: timings[key] for key in sorted(timings)},
        }

    def summary_lines(self, limit: int = 12) -> List[str]:
        """A compact, deterministic digest for the run summary."""
        snap = self.snapshot()
        lines: List[str] = []
        for key, value in snap["metrics"].items():
            if isinstance(value, dict):  # histogram
                value = "n={} total={}".format(value["count"], value["total"])
            lines.append("  {:<44} {}".format(key, value))
        if len(lines) > limit:
            lines = lines[:limit] + ["  ... ({} more metrics)".format(len(snap["metrics"]) - limit)]
        span_count = len(snap["timings"])
        if span_count:
            lines.append("  ({} timed spans; wall-clock detail in jsonl mode)".format(span_count))
        return lines

    def write_jsonl(self, path: str) -> None:
        """Persist the trace (if any) plus the final snapshot as JSONL.

        Span events carry monotonic durations, so the file as a whole is
        a diagnostic artifact; only its final ``snapshot`` line's
        ``metrics`` section is deterministic.
        """
        snap = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._trace or ():
                handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.write(json.dumps({"event": "snapshot", **snap}, sort_keys=True) + "\n")


def create_registry(spec: str) -> Tuple[Any, Optional[str]]:
    """Build a registry from a ``--telemetry`` spec.

    ``off`` → ``(NULL_REGISTRY, None)``; ``summary`` → live registry;
    ``jsonl:PATH`` → live registry with span tracing plus the path to
    write on completion.  Raises ``ValueError`` on anything else.
    """
    if spec == "off":
        return NULL_REGISTRY, None
    if spec == "summary":
        return MetricsRegistry(mode="summary"), None
    if spec.startswith("jsonl:"):
        path = spec[len("jsonl:"):]
        if not path:
            raise ValueError("jsonl telemetry mode needs a path: jsonl:PATH")
        return MetricsRegistry(mode="jsonl", trace=True), path
    raise ValueError("unknown telemetry mode: {!r} (expected off|summary|jsonl:PATH)".format(spec))
