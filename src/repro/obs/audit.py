"""Evidence reconciliation: audit a run's trust state against its ledger.

The evidence plane names every persistent unit of evidence ``(origin,
seq)`` and keeps per-peer :class:`~repro.simulation.repair.
EvidenceJournal`s under journaling repair policies — but nothing verified
end to end that every entry the ledger claims was delivered actually
landed in backend state *exactly once*.  This module closes that loop,
in the spirit of a central index reconciling distributed uploads:

* :class:`EvidenceAuditTrail` — an independent ledger the plane feeds
  through explicit hook points (emit / apply / expire).  It records what
  *should* be in the backends: per-recipient observation-record units,
  the multiset of complaint filings, and per-key application counts.
* :func:`reconcile` — cross-checks the trail against the plane's
  counters, the complaint store's actual contents, the union of the
  journals, and per-peer backend row counts, producing an
  :class:`AuditReport` with per-peer / per-shard divergences.
* :func:`collect_audit_inputs` — extracts the actual state from a
  finished :class:`~repro.simulation.community.CommunitySimulation`
  (duck-typed so this module stays a dependency-free leaf).
* :func:`inject_double_apply` / :func:`inject_dropped_entry` — fault
  injectors the mutation tests use to prove the audit actually detects
  divergence rather than vacuously passing.

The report serialises in the ``BENCH_*.json`` shape (``{name, metrics,
bars, passed}``, timestamp-free) so divergence reports diff cleanly in
CI artifacts alongside the benchmark results.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "AuditReport",
    "EvidenceAuditTrail",
    "collect_audit_inputs",
    "inject_double_apply",
    "inject_dropped_entry",
    "reconcile",
]

Key = Tuple[str, int]
ComplaintTuple = Tuple[str, str, float]


class EvidenceAuditTrail:
    """What the evidence plane *believes* it delivered, recorded first-hand.

    The plane calls the ``on_*`` hooks at its emit / apply / expire
    points; the trail never touches backend state, so a later
    :func:`reconcile` compares two genuinely independent ledgers.
    Synchronous applications (no ``(origin, seq)`` naming) are recorded
    with ``key=None`` — they have no entry identity but still count
    toward the per-recipient and complaint expectations.
    """

    def __init__(self) -> None:
        #: key -> (kind, recipient_id, payload units) for async entries.
        self.emitted: Dict[Key, Tuple[str, str, int]] = {}
        #: key -> number of times the plane applied it (should be <= 1).
        self.applied_counts: Dict[Key, int] = {}
        #: Keys written off (recipient churned / addressed to nobody).
        self.expired: Set[Key] = set()
        #: recipient peer id -> observation records applied to its backends.
        self.record_units: Dict[str, int] = {}
        #: Multiset of complaint filings applied to the community store.
        self.complaints: List[ComplaintTuple] = []
        #: Applications without entry naming (sync plane).
        self.sync_applications = 0

    # -- hooks (called by the evidence plane) ---------------------------

    def on_emitted(self, key: Key, kind: str, recipient_id: str, units: int) -> None:
        self.emitted[key] = (kind, recipient_id, units)

    def on_applied(
        self,
        key: Optional[Key],
        kind: str,
        recipient_id: str,
        units: int,
        complaint: Optional[ComplaintTuple] = None,
        derived_complaints: Iterable[ComplaintTuple] = (),
    ) -> None:
        if key is None:
            self.sync_applications += 1
        else:
            self.applied_counts[key] = self.applied_counts.get(key, 0) + 1
        if kind == "evidence":
            self.record_units[recipient_id] = (
                self.record_units.get(recipient_id, 0) + units
            )
        if complaint is not None:
            self.complaints.append(complaint)
        # Applying an observation batch also files complaints: the
        # recipient's complaint backend derives one filing per record whose
        # partner defected.  The plane passes those here so the store
        # comparison accounts for every write path.
        self.complaints.extend(derived_complaints)

    def on_expired(self, key: Key) -> None:
        self.expired.add(key)

    def on_unexpired(self, key: Key) -> None:
        """A written-off entry landed after all (ledger reconciliation)."""
        self.expired.discard(key)

    # -- derived --------------------------------------------------------

    @property
    def applied_total(self) -> int:
        return sum(self.applied_counts.values())

    def metrics_view(self) -> Dict[str, int]:
        """Registry view: the trail's own tallies (deterministic)."""
        return {
            "entries_emitted": len(self.emitted),
            "entries_applied": self.applied_total,
            "entries_expired": len(self.expired),
            "sync_applications": self.sync_applications,
            "complaints_applied": len(self.complaints),
        }


class AuditReport:
    """Outcome of one reconciliation pass.

    ``checks`` maps check name to ``{"value": <divergence count>,
    "limit": 0, "ok": bool}`` (the ``BENCH_*.json`` bar shape);
    ``divergences`` lists every individual mismatch with its peer and
    (when the store is sharded) shard; ``metrics`` carries the audited
    totals.  Everything is deterministic for a seeded run.
    """

    def __init__(
        self,
        checks: Dict[str, Dict[str, Any]],
        divergences: List[Dict[str, Any]],
        metrics: Dict[str, Any],
    ) -> None:
        self.checks = checks
        self.divergences = divergences
        self.metrics = metrics

    @property
    def passed(self) -> bool:
        return all(entry["ok"] for entry in self.checks.values())

    def to_payload(self, name: str = "audit") -> Dict[str, Any]:
        """The report in the ``BENCH_*.json`` format (timestamp-free)."""
        return {
            "name": name,
            "metrics": {**self.metrics, "divergences": self.divergences},
            "bars": dict(self.checks),
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = ["Evidence audit:"]
        for check in sorted(self.checks):
            entry = self.checks[check]
            verdict = "ok" if entry["ok"] else "DIVERGED"
            lines.append(
                "  {:<28} {:>6} divergence(s)  [{}]".format(
                    check, entry["value"], verdict
                )
            )
        for divergence in self.divergences[:20]:
            where = divergence.get("peer", "-")
            shard = divergence.get("shard")
            if shard is not None:
                where = "{} (shard {})".format(where, shard)
            lines.append(
                "    {}: {} — {}".format(
                    divergence["check"], where, divergence["detail"]
                )
            )
        if len(self.divergences) > 20:
            lines.append(
                "    ... {} more divergences".format(len(self.divergences) - 20)
            )
        lines.append(
            "  verdict: {}".format("CLEAN" if self.passed else "DIVERGED")
        )
        return "\n".join(lines)


def _check(value: int) -> Dict[str, Any]:
    return {"value": value, "limit": 0, "ok": value == 0}


def reconcile(
    trail: EvidenceAuditTrail,
    *,
    counters: Any = None,
    store_complaints: Iterable[ComplaintTuple] = (),
    shard_of: Optional[Callable[[str], Any]] = None,
    journal_keys: Optional[Mapping[str, Set[Key]]] = None,
    observation_totals: Optional[Mapping[str, int]] = None,
    require_settled: bool = False,
) -> AuditReport:
    """Cross-check the trail against the run's actual end state.

    Checks (each a ``BENCH``-style bar whose value is its divergence
    count):

    ``plane_double_apply``
        No ``(origin, seq)`` entry was applied more than once.
    ``plane_unknown_apply``
        Nothing was applied that was never emitted.
    ``ledger_consistency``
        The trail agrees with ``NetworkCounters``'s entry ledger
        (emitted / applied / expired), so neither bookkeeping drifted.
    ``complaint_store``
        The complaint store's contents equal, as a multiset, exactly the
        filings the plane applied — no duplicates, no drops.  Mismatches
        are reported per accused peer (and per shard when the store
        routes by peer id).
    ``journal_coverage``
        Under journaling repair (gossip) after a full drain, every
        persistent journaled entry is accounted for: applied or expired.
        Skipped otherwise (``require_settled=False``).
    ``backend_observations``
        Every peer's trust backend holds exactly as many observation
        rows as the plane delivered records to it.

    Entries emitted but neither applied nor expired are the configured
    network loss with repair off — reported as ``missing_entries`` in
    the metrics, not as a divergence.
    """
    checks: Dict[str, Dict[str, Any]] = {}
    divergences: List[Dict[str, Any]] = []

    # -- plane-level dedup invariants -----------------------------------
    multi = sorted(
        key for key, count in trail.applied_counts.items() if count > 1
    )
    checks["plane_double_apply"] = _check(len(multi))
    for key in multi:
        divergences.append(
            {
                "check": "plane_double_apply",
                "peer": key[0],
                "detail": "entry {} applied {} times".format(
                    list(key), trail.applied_counts[key]
                ),
            }
        )
    unknown = sorted(
        key for key in trail.applied_counts if key not in trail.emitted
    )
    checks["plane_unknown_apply"] = _check(len(unknown))
    for key in unknown:
        divergences.append(
            {
                "check": "plane_unknown_apply",
                "peer": key[0],
                "detail": "entry {} applied but never emitted".format(list(key)),
            }
        )

    # -- trail vs. NetworkCounters ledger -------------------------------
    ledger_diffs = 0
    if counters is not None:
        for label, expected, actual in (
            ("entries_emitted", len(trail.emitted), counters.entries_emitted),
            ("entries_applied", trail.applied_total, counters.entries_applied),
            ("entries_expired", len(trail.expired), counters.entries_expired),
        ):
            if expected != actual:
                ledger_diffs += 1
                divergences.append(
                    {
                        "check": "ledger_consistency",
                        "peer": "-",
                        "detail": "{}: trail {} != counters {}".format(
                            label, expected, actual
                        ),
                    }
                )
    checks["ledger_consistency"] = _check(ledger_diffs)

    # -- complaint store vs. applied filings ----------------------------
    expected_complaints = Counter(trail.complaints)
    actual_complaints = Counter(tuple(item) for item in store_complaints)
    store_diffs = 0
    per_shard: Dict[str, int] = {}
    for filing in sorted(set(expected_complaints) | set(actual_complaints)):
        want = expected_complaints.get(filing, 0)
        have = actual_complaints.get(filing, 0)
        if want == have:
            continue
        store_diffs += 1
        accused = filing[1]
        shard = shard_of(accused) if shard_of is not None else None
        if shard is not None:
            per_shard[str(shard)] = per_shard.get(str(shard), 0) + 1
        divergence: Dict[str, Any] = {
            "check": "complaint_store",
            "peer": accused,
            "detail": "filing ({} -> {} @ {:g}): expected {}, in store {}".format(
                filing[0], filing[1], filing[2], want, have
            ),
        }
        if shard is not None:
            divergence["shard"] = shard
        divergences.append(divergence)
    checks["complaint_store"] = _check(store_diffs)

    # -- journal coverage (journaling repair, fully drained runs) -------
    journal_diffs = 0
    if journal_keys is not None and require_settled:
        union: Set[Key] = set()
        for keys in journal_keys.values():
            union.update(keys)
        settled = set(trail.applied_counts) | trail.expired
        for key in sorted(union - settled):
            # Journals also hold relayed third-party copies of entries the
            # trail knows; only entries the plane actually emitted are in
            # scope.
            if key not in trail.emitted:
                continue
            journal_diffs += 1
            divergences.append(
                {
                    "check": "journal_coverage",
                    "peer": key[0],
                    "detail": "journaled entry {} neither applied nor expired".format(
                        list(key)
                    ),
                }
            )
    checks["journal_coverage"] = _check(journal_diffs)

    # -- backend observation rows vs. delivered records -----------------
    observation_diffs = 0
    if observation_totals is not None:
        peer_ids = sorted(set(observation_totals) | set(trail.record_units))
        for peer_id in peer_ids:
            want = trail.record_units.get(peer_id, 0)
            have = observation_totals.get(peer_id)
            if have is None:
                # Delivered to a peer the collector no longer sees (it
                # churned out and was discarded); nothing to compare.
                continue
            if want != have:
                observation_diffs += 1
                divergences.append(
                    {
                        "check": "backend_observations",
                        "peer": peer_id,
                        "detail": "backend holds {} observations, plane delivered {}".format(
                            have, want
                        ),
                    }
                )
    checks["backend_observations"] = _check(observation_diffs)

    metrics: Dict[str, Any] = dict(trail.metrics_view())
    metrics["complaints_in_store"] = sum(actual_complaints.values())
    metrics["missing_entries"] = (
        len(trail.emitted) - trail.applied_total - len(trail.expired)
    )
    metrics["peers_audited"] = (
        len(observation_totals) if observation_totals is not None else 0
    )
    metrics["journals_audited"] = (
        len(journal_keys) if journal_keys is not None else 0
    )
    if per_shard:
        metrics["divergences_per_shard"] = {
            shard: per_shard[shard] for shard in sorted(per_shard)
        }
    return AuditReport(checks, divergences, metrics)


def collect_audit_inputs(simulation: Any, store: Any = None) -> Dict[str, Any]:
    """Extract the actual end-of-run state :func:`reconcile` compares against.

    Duck-typed over :class:`~repro.simulation.community.
    CommunitySimulation` (live plus departed peers), the shared complaint
    store, and the evidence plane — this module imports nothing from the
    rest of ``repro``.
    """
    plane = simulation.evidence_plane
    peers = list(simulation.peers)
    departed = list(getattr(simulation, "departed_peers", ()))
    everyone = peers + departed
    if store is None and everyone:
        store = everyone[0].reputation.backend_for("complaint")
    store_complaints: List[ComplaintTuple] = []
    if store is not None:
        store_complaints = [
            (c.complainant_id, c.accused_id, float(c.timestamp))
            for c in store.all_complaints()
        ]
    journal_keys: Optional[Dict[str, Set[Key]]] = None
    if plane.repair_policy.journaling:
        journal_keys = {
            holder: set(journal.keys())
            for holder, journal in plane.journals.items()
        }
    observation_totals: Dict[str, int] = {}
    for peer in everyone:
        backend = peer.reputation.backend_for("beta")
        observation_totals[peer.peer_id] = sum(
            backend.observation_count(subject)
            for subject in backend.known_subjects()
        )
    return {
        "counters": plane.counters,
        "store_complaints": store_complaints,
        "shard_of": getattr(store, "shard_index_of", None),
        "journal_keys": journal_keys,
        "observation_totals": observation_totals,
    }


# ----------------------------------------------------------------------
# Fault injection (mutation testing of the audit itself)
# ----------------------------------------------------------------------
def inject_double_apply(store: Any) -> ComplaintTuple:
    """Re-apply an already-filed complaint directly to the store.

    Bypasses the evidence plane (and therefore its dedup and the audit
    trail), simulating a backend that applied one ``(origin, seq)``
    filing twice.  Returns the duplicated filing; a subsequent
    :func:`reconcile` must flag it under ``complaint_store``.
    """
    complaints = sorted(
        store.all_complaints(),
        key=lambda c: (c.complainant_id, c.accused_id, c.timestamp),
    )
    if not complaints:
        raise ValueError("cannot inject a double-apply: store holds no complaints")
    victim = complaints[0]
    store.record_complaints([victim])
    return (victim.complainant_id, victim.accused_id, float(victim.timestamp))


def inject_dropped_entry(store: Any) -> ComplaintTuple:
    """Silently remove one applied complaint from the store.

    Round-trips the store through its snapshot with one filed complaint
    deleted from its log (and that filing's counters decremented),
    simulating an applied entry whose state write was lost.  Works on
    plain, sharded and worker-hosted stores: in a sharded manifest each
    cross-shard complaint is stored twice, so the dropped row is taken
    from its *accused-home* shard — the copy :meth:`all_complaints`
    reports.  Returns the dropped filing; a subsequent :func:`reconcile`
    must flag it under ``complaint_store``.
    """
    state = dict(store.snapshot_items())
    if "complainants" in state:
        prefixes = [""]
    else:  # sharded manifest: one shard-NNNN/ group per shard
        prefixes = sorted(
            {
                key.partition("/")[0] + "/"
                for key in state
                if key.endswith("/complainants")
            }
        )
    shard_of = getattr(store, "shard_index_of", None)
    for prefix in reversed(prefixes):
        complainants = [str(item) for item in state[prefix + "complainants"]]
        accused = [str(item) for item in state[prefix + "accused"]]
        timestamps = [float(item) for item in state[prefix + "timestamps"]]
        home = int(prefix[len("shard-"):-1]) if prefix else None
        for row in range(len(complainants) - 1, -1, -1):
            if (
                home is not None
                and shard_of is not None
                and shard_of(accused[row]) != home
            ):
                continue  # complainant-home copy; all_complaints skips it
            dropped = (complainants[row], accused[row], timestamps[row])
            del complainants[row], accused[row], timestamps[row]
            peer_ids = [str(item) for item in state[prefix + "peer_ids"]]
            index = {
                peer_id: position for position, peer_id in enumerate(peer_ids)
            }
            received = [float(item) for item in state[prefix + "received"]]
            filed = [float(item) for item in state[prefix + "filed"]]
            accused_row = index.get(dropped[1])
            filer_row = index.get(dropped[0])
            if accused_row is not None:
                received[accused_row] = max(0.0, received[accused_row] - 1.0)
            if filer_row is not None:
                filed[filer_row] = max(0.0, filed[filer_row] - 1.0)
            state[prefix + "complainants"] = complainants
            state[prefix + "accused"] = accused
            state[prefix + "timestamps"] = timestamps
            state[prefix + "received"] = received
            state[prefix + "filed"] = filed
            store.restore(state)
            return dropped
    raise ValueError("cannot inject a drop: store holds no complaints")
