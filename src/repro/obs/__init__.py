"""Observability plane: unified metrics, span tracing, and evidence audit.

``repro.obs`` is a dependency-free leaf package — it imports nothing from
the rest of ``repro`` (stdlib only), so every layer of the pipeline
(trust backends, worker transport, evidence plane, simulation loop) can
instrument itself through :class:`~repro.obs.metrics.MetricsRegistry`
without creating import cycles.

Two modules:

``metrics``
    The telemetry substrate: namespaced counters / gauges / fixed-bucket
    histograms, a ``span(name, **tags)`` context manager for nested
    timing traces, and registry *views* that re-home existing ad-hoc
    counters (``NetworkCounters``, rebalance tallies, worker journal
    stats) into one ``snapshot()``.  ``NULL_REGISTRY`` makes
    ``telemetry=off`` a true no-op.

``audit``
    The reconciliation pass behind ``repro audit``: an
    :class:`~repro.obs.audit.EvidenceAuditTrail` records every emitted /
    applied / expired evidence entry during a run, and
    :func:`~repro.obs.audit.reconcile` cross-checks the trail against
    backend state, the complaint store, and the per-peer journals,
    emitting a per-peer / per-shard divergence report in the
    ``BENCH_*.json`` metrics format.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    create_registry,
)
from repro.obs.audit import (
    AuditReport,
    EvidenceAuditTrail,
    collect_audit_inputs,
    inject_double_apply,
    inject_dropped_entry,
    reconcile,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "create_registry",
    "AuditReport",
    "EvidenceAuditTrail",
    "collect_audit_inputs",
    "inject_double_apply",
    "inject_dropped_entry",
    "reconcile",
]
