"""Peer population generators.

The strategy-comparison and community-dynamics experiments sweep over the
composition of the population: what fraction of peers is honest, maliciously
defecting, opportunistic, or probabilistically unreliable, and whether the
dishonest peers additionally pollute the complaint store.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import WorkloadError
from repro.reputation.manager import TrustMethod
from repro.simulation.behaviors import (
    BehaviorModel,
    FluctuatingBehavior,
    HonestBehavior,
    OpportunisticBehavior,
    ProbabilisticBehavior,
    RationalDefectorBehavior,
)
from repro.simulation.peer import CommunityPeer
from repro.trust import ComplaintStore, RebalancePolicy

__all__ = ["PopulationSpec", "build_population", "population_factory", "honesty_map"]


@dataclass
class PopulationSpec:
    """Composition of a community population.

    The five fractions must sum to at most 1; the remainder becomes
    probabilistically unreliable peers with honesty ``probabilistic_honesty``.
    ``fluctuating_fraction`` adds "milking" peers: honest until
    ``fluctuating_switch_time`` (building reputation), defecting with
    probability ``1 - fluctuating_later_honesty`` afterwards.
    """

    size: int = 20
    honest_fraction: float = 0.6
    dishonest_fraction: float = 0.2
    opportunist_fraction: float = 0.0
    probabilistic_fraction: float = 0.2
    fluctuating_fraction: float = 0.0
    probabilistic_honesty: float = 0.85
    opportunist_threshold: float = 5.0
    fluctuating_initial_honesty: float = 1.0
    fluctuating_later_honesty: float = 0.1
    fluctuating_switch_time: float = 25.0
    false_complaint_probability: float = 0.0
    defection_penalty: float = 0.0
    id_prefix: str = "peer"

    def __post_init__(self) -> None:
        if self.size < 2:
            raise WorkloadError(f"population size must be >= 2, got {self.size}")
        fractions = (
            self.honest_fraction,
            self.dishonest_fraction,
            self.opportunist_fraction,
            self.probabilistic_fraction,
            self.fluctuating_fraction,
        )
        if any(fraction < 0 for fraction in fractions):
            raise WorkloadError("population fractions must be non-negative")
        if sum(fractions) > 1.0 + 1e-9:
            raise WorkloadError("population fractions must sum to at most 1")
        if not 0.0 <= self.probabilistic_honesty <= 1.0:
            raise WorkloadError("probabilistic_honesty must lie in [0, 1]")
        if not 0.0 <= self.false_complaint_probability <= 1.0:
            raise WorkloadError("false_complaint_probability must lie in [0, 1]")
        if self.defection_penalty < 0:
            raise WorkloadError("defection_penalty must be >= 0")

    def behavior_for(self, index: int, rng: random.Random) -> BehaviorModel:
        """Assign a behaviour to the ``index``-th peer (deterministic slots).

        Peers are assigned in blocks (honest first, then dishonest, then
        opportunists, then fluctuating, then probabilistic) so a given spec
        always produces the same composition regardless of the RNG; the RNG
        is only used for the residual class when the fractions do not
        exactly divide the size.
        """
        honest_count = round(self.size * self.honest_fraction)
        dishonest_count = round(self.size * self.dishonest_fraction)
        opportunist_count = round(self.size * self.opportunist_fraction)
        fluctuating_count = round(self.size * self.fluctuating_fraction)
        if index < honest_count:
            return HonestBehavior()
        if index < honest_count + dishonest_count:
            return RationalDefectorBehavior(
                false_complaint_probability=self.false_complaint_probability
            )
        if index < honest_count + dishonest_count + opportunist_count:
            return OpportunisticBehavior(threshold=self.opportunist_threshold)
        if index < (
            honest_count + dishonest_count + opportunist_count + fluctuating_count
        ):
            return FluctuatingBehavior(
                initial_honesty=self.fluctuating_initial_honesty,
                later_honesty=self.fluctuating_later_honesty,
                switch_time=self.fluctuating_switch_time,
            )
        return ProbabilisticBehavior(honesty=self.probabilistic_honesty)


def build_population(
    spec: PopulationSpec,
    complaint_store: Optional[ComplaintStore] = None,
    seed: int = 0,
    trust_method: str = TrustMethod.BETA,
    shards: int = 1,
    shard_router: str = "hash",
    rebalance: Optional[RebalancePolicy] = None,
    compact: bool = False,
    cache_scores: bool = True,
) -> List[CommunityPeer]:
    """Build the peers described by ``spec``.

    When ``complaint_store`` is supplied every peer files complaints into (and
    reads from) that shared store, modelling the community-wide complaint
    system; otherwise each peer keeps a private store (direct evidence only).
    ``trust_method`` selects the trust backend every peer consults (one of
    :data:`repro.reputation.manager.TrustMethod.ALL`); ``shards`` partitions
    every peer's trust backends by peer-id range (1 = unsharded);
    ``compact`` switches every peer's backends to memory-bounded chunked
    float32/int32 storage (large-community mode).
    """
    rng = random.Random(seed)
    peers: List[CommunityPeer] = []
    for index in range(spec.size):
        behavior = spec.behavior_for(index, rng)
        peers.append(
            CommunityPeer(
                peer_id=f"{spec.id_prefix}-{index:03d}",
                behavior=behavior,
                complaint_store=complaint_store,
                defection_penalty=spec.defection_penalty,
                trust_method=trust_method,
                shards=shards,
                shard_router=shard_router,
                rebalance=rebalance,
                compact=compact,
                cache_scores=cache_scores,
            )
        )
    return peers


def population_factory(
    spec: PopulationSpec,
    complaint_store: Optional[ComplaintStore] = None,
    seed: int = 0,
    trust_method: str = TrustMethod.BETA,
    shards: int = 1,
    shard_router: str = "hash",
    rebalance: Optional[RebalancePolicy] = None,
    compact: bool = False,
    cache_scores: bool = True,
) -> Callable[[int], CommunityPeer]:
    """A factory for churn arrivals drawing behaviours from the same spec."""
    rng = random.Random(seed + 1)

    def factory(counter: int) -> CommunityPeer:
        index = rng.randrange(spec.size)
        behavior = spec.behavior_for(index, rng)
        return CommunityPeer(
            peer_id=f"{spec.id_prefix}-new-{counter}",
            behavior=behavior,
            complaint_store=complaint_store,
            defection_penalty=spec.defection_penalty,
            trust_method=trust_method,
            shards=shards,
            shard_router=shard_router,
            rebalance=rebalance,
            compact=compact,
            cache_scores=cache_scores,
        )

    return factory


def honesty_map(peers: List[CommunityPeer]) -> Dict[str, float]:
    """Ground-truth honesty probabilities keyed by peer id."""
    return {peer.peer_id: peer.true_honesty for peer in peers}
