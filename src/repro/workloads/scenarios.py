"""Named end-to-end scenarios: ready-to-run community simulations.

Each scenario corresponds to one of the application settings the paper's
introduction motivates (or a stress variant of one) and wires together a
valuation workload, a population composition, an optional churn process and a
community configuration.  The exchange strategy is left as a parameter so the
same scenario can be run with the trust-aware approach and with every
baseline, and the trust *backend* is a parameter too
(:data:`repro.trust.BACKEND_NAMES` plus ``combined``), so every scenario ×
backend pair is runnable.

The discoverable catalogue over these builders lives in
:mod:`repro.workloads.registry`; the CLI (``repro list-scenarios`` and
``repro run``) goes through it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from repro.exceptions import WorkloadError
from repro.marketplace.strategy import ExchangeStrategy, TrustAwareStrategy
from repro.reputation.manager import TrustMethod
from repro.simulation.behaviors import CoalitionWitness, RationalDefectorBehavior
from repro.simulation.churn import ChurnModel
from repro.simulation.community import CommunityConfig, CommunitySimulation
from repro.simulation.evidence import COMPLAINT_SINK
from repro.simulation.peer import CommunityPeer
from repro.trust import ComplaintStore, RebalancePolicy, create_backend
from repro.workloads.populations import (
    PopulationSpec,
    build_population,
    population_factory,
)
from repro.workloads.valuations import valuation_workload

__all__ = ["ScenarioSpec", "build_scenario", "SCENARIO_NAMES"]

SCENARIO_NAMES = (
    "ebay",
    "p2p-file-trading",
    "teamwork",
    "high-churn",
    "collusive-witness",
    "mixed-goods",
    "sybil-coalition",
    "flash-crowd",
    "partition-heal",
    "fluctuating-behaviour",
)


@dataclass
class ScenarioSpec:
    """Fully resolved scenario: peers plus configuration."""

    name: str
    peers: List[CommunityPeer]
    config: CommunityConfig
    complaint_store: ComplaintStore
    trust_method: str = TrustMethod.BETA
    churn: Optional[ChurnModel] = None
    peer_factory: Optional[Callable[[int], CommunityPeer]] = None

    def simulation(self, strategy: Optional[ExchangeStrategy] = None) -> CommunitySimulation:
        """A community simulation of this scenario with the given strategy."""
        chosen = strategy if strategy is not None else TrustAwareStrategy()
        return CommunitySimulation(
            self.peers,
            chosen,
            self.config,
            churn=self.churn,
            peer_factory=self.peer_factory,
        )


def _resolve_trust_method(backend: Optional[str]) -> str:
    method = backend if backend is not None else TrustMethod.BETA
    if method not in TrustMethod.ALL:
        raise WorkloadError(
            f"unknown trust backend {method!r}; valid names: {TrustMethod.ALL}"
        )
    return method


def build_scenario(
    name: str,
    size: int = 20,
    rounds: int = 40,
    dishonest_fraction: float = 0.2,
    defection_penalty: float = 0.0,
    seed: int = 0,
    backend: Optional[str] = None,
    evidence_mode: str = "sync",
    evidence_latency: float = 0.0,
    evidence_loss: float = 0.0,
    evidence_repair: str = "off",
    gossip_period: float = 1.0,
    gossip_fanout: int = 2,
    retransmit_timeout: float = 2.0,
    witness_count: Optional[int] = None,
    shards: int = 1,
    shard_router: str = "hash",
    rebalance: str = "off",
    rebalance_threshold: float = 2.0,
    max_shards: int = 16,
    compact: bool = False,
    cache_scores: bool = True,
    workers: int = 0,
    telemetry: Optional[object] = None,
) -> ScenarioSpec:
    """Construct one of the named scenarios.

    ``ebay`` — physical goods with big-ticket items, random discovery;
    ``p2p-file-trading`` — digital goods, cheap to produce, trust-weighted
    discovery; ``teamwork`` — services with weakly correlated valuations and
    a reputation continuation value (ongoing collaborations); ``high-churn``
    — digital goods under constant peer arrival/departure (stale-evidence
    stress, the decay backend's home turf); ``collusive-witness`` — a large
    malicious minority that coordinates spurious complaints against honest
    peers (the complaint backend's threat model); ``mixed-goods`` — a
    marketplace mixing physical, digital and service valuations in one
    bundle; ``sybil-coalition`` — a coalition of fake identities that vouch
    for each other through forged witness reports (the discounted
    witness-aggregation path's threat model).

    ``backend`` selects the trust backend every peer consults (``beta``,
    ``complaint``, ``decay`` or ``combined``; default ``beta``).  The
    evidence-plane knobs (``evidence_mode``/``evidence_latency``/
    ``evidence_loss``) choose between today's synchronous evidence flush and
    asynchronous propagation over the simulated network, and the repair
    knobs (``evidence_repair``/``gossip_period``/``gossip_fanout``/
    ``retransmit_timeout``) select how lost evidence is recovered;
    ``witness_count`` overrides how many witnesses each party polls after an
    exchange (``None`` keeps the scenario's own default — 0 everywhere
    except ``sybil-coalition`` and ``partition-heal``); ``flash-crowd`` — a
    stable community swamped by waves of unknown newcomers (cold-start
    trust and shard-rebalance stress); ``partition-heal`` — the community
    splits into two cliques with total cross-partition evidence loss for
    the first half of the run, then heals (inherently asynchronous: a sync
    request is upgraded to async with gossip repair so anti-entropy can
    backfill the missed evidence); ``fluctuating-behaviour`` — "milking"
    peers build reputation honestly then defect in bursts (the decay
    backend's forgetting against late evidence).  ``shards`` partitions
    every trust backend (each peer's own and the community's shared
    complaint store) by peer-id range across that many inner backends;
    results are bit-identical to ``shards=1``.  ``rebalance="auto"``
    additionally lets every sharded backend *split hot shards live* while
    the community runs (the P-Grid path-split under churn): a shard
    exceeding ``rebalance_threshold`` times the ideal per-shard share — or
    outgrowing an absolute per-shard row capacity scaled to the community
    size, which is how a single-shard run starts splitting at all — is
    snapshotted and its rows redistributed onto two successor shards, up
    to ``max_shards``.  Splitting needs a splittable router, so a ``hash``
    request is upgraded to ``ring`` (consistent hashing — same hash-style
    assignment, but a split moves only the hot shard's keys).  Splits are
    score-invisible: results stay bit-identical to an unsharded run
    before, during and after every split.  ``compact=True`` switches every
    trust backend in the scenario (each peer's own and the shared complaint
    store) to memory-bounded storage — chunked float32/int32 evidence
    arrays that grow without copying — trading bit-identity for a
    documented float32 tolerance on beta-family scores (complaint counters
    remain exact); decisions on the registered scenarios are unchanged.
    ``cache_scores=False`` disables the dirty-row score cache on every
    trust backend in the scenario (the reference configuration the cache is
    validated against).  ``workers=N`` (N >= 1) hosts the community's
    shared complaint store in N shard-worker processes
    (:class:`~repro.trust.workers.WorkerShardedBackend`) so the store's
    updates and queries run in parallel across cores; the store is sharded
    ``max(shards, workers)`` ways and scores stay bit-identical to the
    in-process run.  Per-peer private backends stay in-process — one
    worker fleet per peer would oversubscribe any machine.
    ``telemetry`` binds a :class:`repro.obs.MetricsRegistry` to the shared
    complaint store and the community run (``None`` keeps the zero-cost
    null recorder); telemetry is purely observational and never changes a
    result.
    """
    if name not in SCENARIO_NAMES:
        raise WorkloadError(
            f"unknown scenario {name!r}; valid names: {SCENARIO_NAMES}"
        )
    if shards < 1:
        raise WorkloadError(f"shards must be >= 1, got {shards}")
    if rebalance not in ("off", "auto"):
        raise WorkloadError(
            f"rebalance must be 'off' or 'auto', got {rebalance!r}"
        )
    if workers < 0:
        raise WorkloadError(f"workers must be >= 0, got {workers}")
    trust_method = _resolve_trust_method(backend)
    rebalance_policy: Optional[RebalancePolicy] = None
    if rebalance == "auto":
        if shard_router == "hash":
            # Modulo hashing cannot split without reassigning every key;
            # consistent hashing keeps hash-style assignment and splits
            # cleanly, so an auto-rebalanced run upgrades to it.
            shard_router = "ring"
        rebalance_policy = RebalancePolicy(
            threshold=rebalance_threshold,
            max_shards=max_shards,
            # The capacity bound bootstraps growth (a single shard has no
            # skew to measure) and tracks the community size so flash-crowd
            # arrivals actually trip it.
            split_rows=max(16, 2 * size),
            min_shard_rows=8,
            check_every=1,
        )
    scenario_witness_count = 0
    evidence_fault: Optional[Callable[[str, str, float], bool]] = None
    # One vectorized complaint backend shared by the whole community is the
    # community complaint store: every peer writes and reads through it, so
    # counters are updated incrementally with no cache rebuilds.  With
    # shards > 1 the store itself is partitioned by peer-id range.
    shared_store = create_backend(
        "complaint",
        metric_mode="balanced",
        shards=max(shards, workers) if workers else shards,
        router=shard_router,
        rebalance=rebalance_policy,
        compact=compact,
        cache_scores=cache_scores,
        workers=workers > 0,
    )
    if telemetry is not None and getattr(telemetry, "enabled", False):
        shared_store.bind_telemetry(telemetry)
    churn: Optional[ChurnModel] = None
    factory: Optional[Callable[[int], CommunityPeer]] = None

    if name == "ebay":
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.7 - dishonest_fraction / 2),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.3 - dishonest_fraction / 2),
            false_complaint_probability=0.3,
            defection_penalty=defection_penalty,
            id_prefix="ebay",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=5,
            valuation_model=valuation_workload("ebay"),
            matching="random",
            defection_penalty=defection_penalty,
            seed=seed,
        )
    elif name == "p2p-file-trading":
        spec = PopulationSpec(
            size=size,
            honest_fraction=0.6,
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.4 - dishonest_fraction),
            probabilistic_honesty=0.9,
            false_complaint_probability=0.5,
            defection_penalty=defection_penalty,
            id_prefix="p2p",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=8,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
    elif name == "teamwork":
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.85 - dishonest_fraction),
            dishonest_fraction=dishonest_fraction,
            opportunist_fraction=0.15,
            probabilistic_fraction=0.0,
            opportunist_threshold=8.0,
            defection_penalty=max(defection_penalty, 2.0),
            id_prefix="team",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=4,
            valuation_model=valuation_workload("teamwork"),
            matching="trust",
            defection_penalty=max(defection_penalty, 2.0),
            seed=seed,
        )
    elif name == "high-churn":
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.65 - dishonest_fraction / 2),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.35 - dishonest_fraction / 2),
            probabilistic_honesty=0.85,
            false_complaint_probability=0.3,
            defection_penalty=defection_penalty,
            id_prefix="churn",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=6,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
        churn = ChurnModel(
            departure_probability=0.12,
            arrival_rate=max(1.0, size * 0.1),
            min_population=max(4, size // 3),
        )
        factory = population_factory(
            spec,
            complaint_store=shared_store,
            seed=seed,
            trust_method=trust_method,
            shards=shards,
            shard_router=shard_router,
            rebalance=rebalance_policy,
            compact=compact,
            cache_scores=cache_scores,
        )
    elif name == "collusive-witness":
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 1.0 - dishonest_fraction - 0.1),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=0.1,
            probabilistic_honesty=0.9,
            # The malicious coalition bad-mouths honest partners after nearly
            # every successful interaction — the witness-pollution threat
            # model of the complaint-based scheme.
            false_complaint_probability=0.9,
            defection_penalty=defection_penalty,
            id_prefix="collusion",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=5,
            valuation_model=valuation_workload("ebay"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
    elif name == "sybil-coalition":
        # A coalition of fake identities: they defect like rational cheaters,
        # flood complaints, and — the distinguishing attack — answer witness
        # requests with forged vouches for each other and bad-mouthing of
        # everyone else.  Witness polling is on by default so the discounted
        # aggregation path is actually exercised.
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.9 - dishonest_fraction),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=0.1,
            probabilistic_honesty=0.9,
            false_complaint_probability=0.6,
            defection_penalty=defection_penalty,
            id_prefix="sybil",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=6,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
        scenario_witness_count = 4
    elif name == "flash-crowd":
        # A stable community is swamped by bursts of unknown newcomers: far
        # more arrivals per round than the high-churn scenario, with mild
        # departures, so the population (and with it every backend's
        # interned peer table) keeps growing.  Stresses cold-start trust —
        # trust-weighted matching must keep discovering strangers — and, in
        # sharded runs, the routing of a constantly expanding peer-id space.
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.7 - dishonest_fraction / 2),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.3 - dishonest_fraction / 2),
            probabilistic_honesty=0.8,
            false_complaint_probability=0.3,
            defection_penalty=defection_penalty,
            id_prefix="flash",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=6,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
        churn = ChurnModel(
            departure_probability=0.04,
            arrival_rate=max(2.0, size * 0.35),
            min_population=max(4, size // 2),
        )
        factory = population_factory(
            spec,
            complaint_store=shared_store,
            seed=seed,
            trust_method=trust_method,
            shards=shards,
            shard_router=shard_router,
            rebalance=rebalance_policy,
            compact=compact,
            cache_scores=cache_scores,
        )
    elif name == "partition-heal":
        # Two cliques (even/odd peer index) lose every cross-partition
        # message for the first half of the run, then the link heals.  The
        # marketplace keeps trading across the split (partner discovery is
        # not the evidence network), but complaints and witness traffic
        # between the cliques are cut — the paper's "the network can fail
        # arbitrarily" story made runnable.  The scenario is inherently
        # asynchronous: a sync request is upgraded to async with gossip
        # repair so anti-entropy can backfill the missed evidence once the
        # partition heals.
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.7 - dishonest_fraction / 2),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.3 - dishonest_fraction / 2),
            probabilistic_honesty=0.85,
            false_complaint_probability=0.4,
            defection_penalty=defection_penalty,
            id_prefix="heal",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=6,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
        scenario_witness_count = 2
        if evidence_mode == "sync":
            evidence_mode = "async"
            if evidence_latency == 0.0:
                evidence_latency = 1.0
        if evidence_repair == "off":
            evidence_repair = "gossip"
        heal_time = max(1.0, rounds / 2.0)
        cliques = {f"heal-{index:03d}": index % 2 for index in range(size)}
        # The community complaint store lives in clique 0: during the
        # partition clique-1 filings cannot reach it directly and must be
        # repaired across after heal.
        cliques[COMPLAINT_SINK] = 0

        def _partition_fault(
            sender: str,
            recipient: str,
            now: float,
            _cliques=cliques,
            _heal=heal_time,
        ) -> bool:
            side_a = _cliques.get(sender)
            side_b = _cliques.get(recipient)
            return (
                now < _heal
                and side_a is not None
                and side_b is not None
                and side_a != side_b
            )

        evidence_fault = _partition_fault
    elif name == "fluctuating-behaviour":
        # The ROADMAP's milking population: a block of peers behaves
        # honestly long enough to build reputation, then defects in a burst
        # halfway through the run.  Decay-weighted trust must forget the
        # good old evidence fast enough to catch the turn — which gets
        # strictly harder when repaired evidence arrives late.
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.75 - dishonest_fraction),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=0.0,
            # The milking block yields to an extreme --dishonest request so
            # the fractions can never sum past 1.
            fluctuating_fraction=min(0.25, max(0.0, 1.0 - dishonest_fraction)),
            fluctuating_later_honesty=0.05,
            fluctuating_switch_time=rounds * 0.5,
            false_complaint_probability=0.3,
            defection_penalty=defection_penalty,
            id_prefix="milk",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=5,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
    else:  # mixed-goods
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.6 - dishonest_fraction / 2),
            dishonest_fraction=dishonest_fraction,
            opportunist_fraction=0.1,
            probabilistic_fraction=max(0.0, 0.3 - dishonest_fraction / 2),
            opportunist_threshold=6.0,
            false_complaint_probability=0.2,
            defection_penalty=defection_penalty,
            id_prefix="mixed",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=6,
            valuation_model=valuation_workload("mixed"),
            matching="random",
            defection_penalty=defection_penalty,
            seed=seed,
        )

    config = replace(
        config,
        evidence_mode=evidence_mode,
        evidence_latency=evidence_latency,
        evidence_loss=evidence_loss,
        evidence_repair=evidence_repair,
        gossip_period=gossip_period,
        gossip_fanout=gossip_fanout,
        retransmit_timeout=retransmit_timeout,
        evidence_fault=evidence_fault,
        witness_count=(
            witness_count if witness_count is not None else scenario_witness_count
        ),
        rebalance=rebalance,
        rebalance_threshold=rebalance_threshold,
        max_shards=max_shards,
        telemetry=telemetry,
    )
    peers = build_population(
        spec,
        complaint_store=shared_store,
        seed=seed,
        trust_method=trust_method,
        shards=shards,
        shard_router=shard_router,
        rebalance=rebalance_policy,
        compact=compact,
        cache_scores=cache_scores,
    )
    if name == "sybil-coalition":
        coalition_peers = [
            peer
            for peer in peers
            if isinstance(peer.behavior, RationalDefectorBehavior)
        ]
        coalition_ids = frozenset(peer.peer_id for peer in coalition_peers)
        for peer in coalition_peers:
            peer.witness_policy = CoalitionWitness(members=coalition_ids)
    return ScenarioSpec(
        name=name,
        peers=peers,
        config=config,
        complaint_store=shared_store,
        trust_method=trust_method,
        churn=churn,
        peer_factory=factory,
    )
