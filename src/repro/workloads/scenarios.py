"""Named end-to-end scenarios: ready-to-run community simulations.

Each scenario corresponds to one of the application settings the paper's
introduction motivates and wires together a valuation workload, a population
composition and a community configuration.  The exchange strategy is left as
a parameter so the same scenario can be run with the trust-aware approach and
with every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import WorkloadError
from repro.marketplace.strategy import ExchangeStrategy, TrustAwareStrategy
from repro.simulation.community import CommunityConfig, CommunitySimulation
from repro.simulation.peer import CommunityPeer
from repro.trust.complaint import ComplaintStore, LocalComplaintStore
from repro.workloads.populations import PopulationSpec, build_population
from repro.workloads.valuations import valuation_workload

__all__ = ["ScenarioSpec", "build_scenario", "SCENARIO_NAMES"]

SCENARIO_NAMES = ("ebay", "p2p-file-trading", "teamwork")


@dataclass
class ScenarioSpec:
    """Fully resolved scenario: peers plus configuration."""

    name: str
    peers: List[CommunityPeer]
    config: CommunityConfig
    complaint_store: ComplaintStore

    def simulation(self, strategy: Optional[ExchangeStrategy] = None) -> CommunitySimulation:
        """A community simulation of this scenario with the given strategy."""
        chosen = strategy if strategy is not None else TrustAwareStrategy()
        return CommunitySimulation(self.peers, chosen, self.config)


def build_scenario(
    name: str,
    size: int = 20,
    rounds: int = 40,
    dishonest_fraction: float = 0.2,
    defection_penalty: float = 0.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Construct one of the named scenarios.

    ``ebay`` — physical goods with big-ticket items, random discovery;
    ``p2p-file-trading`` — digital goods, cheap to produce, trust-weighted
    discovery; ``teamwork`` — services with weakly correlated valuations and
    a reputation continuation value (ongoing collaborations).
    """
    if name not in SCENARIO_NAMES:
        raise WorkloadError(
            f"unknown scenario {name!r}; valid names: {SCENARIO_NAMES}"
        )
    shared_store = LocalComplaintStore()
    if name == "ebay":
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.7 - dishonest_fraction / 2),
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.3 - dishonest_fraction / 2),
            false_complaint_probability=0.3,
            defection_penalty=defection_penalty,
            id_prefix="ebay",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=5,
            valuation_model=valuation_workload("ebay"),
            matching="random",
            defection_penalty=defection_penalty,
            seed=seed,
        )
    elif name == "p2p-file-trading":
        spec = PopulationSpec(
            size=size,
            honest_fraction=0.6,
            dishonest_fraction=dishonest_fraction,
            probabilistic_fraction=max(0.0, 0.4 - dishonest_fraction),
            probabilistic_honesty=0.9,
            false_complaint_probability=0.5,
            defection_penalty=defection_penalty,
            id_prefix="p2p",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=8,
            valuation_model=valuation_workload("digital"),
            matching="trust",
            defection_penalty=defection_penalty,
            seed=seed,
        )
    else:  # teamwork
        spec = PopulationSpec(
            size=size,
            honest_fraction=max(0.0, 0.85 - dishonest_fraction),
            dishonest_fraction=dishonest_fraction,
            opportunist_fraction=0.15,
            probabilistic_fraction=0.0,
            opportunist_threshold=8.0,
            defection_penalty=max(defection_penalty, 2.0),
            id_prefix="team",
        )
        config = CommunityConfig(
            rounds=rounds,
            bundle_size=4,
            valuation_model=valuation_workload("teamwork"),
            matching="trust",
            defection_penalty=max(defection_penalty, 2.0),
            seed=seed,
        )
    peers = build_population(spec, complaint_store=shared_store, seed=seed)
    return ScenarioSpec(
        name=name, peers=peers, config=config, complaint_store=shared_store
    )
