"""Named valuation workloads for the application domains the paper mentions.

The introduction motivates three settings: eBay-style auctions, exchanges of
MP3 files for money in a P2P system, and trades of services in a (mobile)
teamwork environment.  Each has a characteristic valuation structure, which
these factories encode so experiments and examples can refer to them by name.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.core.goods import GoodsBundle
from repro.core.valuation import (
    BimodalValuationModel,
    CorrelatedValuationModel,
    MarginValuationModel,
    UniformValuationModel,
    ValuationModel,
    make_bundle,
)
from repro.exceptions import WorkloadError

__all__ = [
    "ebay_auction_valuations",
    "digital_goods_valuations",
    "teamwork_service_valuations",
    "stress_deficit_valuations",
    "mixed_goods_valuations",
    "MixtureValuationModel",
    "valuation_workload",
    "workload_bundle",
]


class MixtureValuationModel(ValuationModel):
    """Draws each item from one of several component valuation models.

    Models a marketplace trading heterogeneous goods (physical big-ticket
    items next to near-free digital goods next to services): every item of a
    bundle picks its component model according to the mixture weights, so a
    single bundle can mix radically different cost/value shapes — the
    workload that stresses exchange scheduling and trust weighting the most.
    """

    def __init__(
        self,
        components: Sequence[ValuationModel],
        weights: Optional[Sequence[float]] = None,
    ):
        if not components:
            raise WorkloadError("a mixture needs at least one component model")
        if weights is None:
            weights = [1.0] * len(components)
        if len(weights) != len(components):
            raise WorkloadError("weights must match the number of components")
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise WorkloadError("mixture weights must be non-negative, sum > 0")
        self._components = tuple(components)
        total = float(sum(weights))
        self._cumulative: Tuple[float, ...] = tuple(
            sum(weights[: index + 1]) / total for index in range(len(weights))
        )

    def sample_item(self, rng: random.Random, index: int) -> Tuple[float, float]:
        draw = rng.random()
        for component, bound in zip(self._components, self._cumulative):
            if draw <= bound:
                return component.sample_item(rng, index)
        return self._components[-1].sample_item(rng, index)


def mixed_goods_valuations() -> ValuationModel:
    """Heterogeneous marketplace: physical, digital and service goods mixed."""
    return MixtureValuationModel(
        components=(
            ebay_auction_valuations(),
            digital_goods_valuations(),
            teamwork_service_valuations(),
        ),
        weights=(0.4, 0.35, 0.25),
    )


def ebay_auction_valuations() -> ValuationModel:
    """Physical goods: substantial supplier cost, moderate positive margins.

    A few "big ticket" items dominate the bundle value, which is exactly the
    shape under which fully safe schedules rarely exist.
    """
    return BimodalValuationModel(
        small_cost=(2.0, 8.0), big_cost=(25.0, 60.0), big_fraction=0.25, margin=0.35
    )


def digital_goods_valuations() -> ValuationModel:
    """MP3-style digital goods: negligible marginal cost, high consumer value.

    With near-zero supplier cost almost every schedule is safe for the
    consumer side; the interesting exposure is the payment side.
    """
    return UniformValuationModel(
        cost_low=0.0, cost_high=0.5, value_low=0.5, value_high=3.0
    )


def teamwork_service_valuations() -> ValuationModel:
    """Teamwork services: costly to perform, value strongly partner-specific.

    Costs and values are only weakly correlated and some tasks are worth less
    to the consumer than they cost the supplier (deficit items), so the
    bundle-level surplus hides item-level losses.
    """
    return CorrelatedValuationModel(
        cost_low=3.0,
        cost_high=15.0,
        value_low=2.0,
        value_high=20.0,
        correlation=0.3,
        value_scale=1.05,
    )


def stress_deficit_valuations() -> ValuationModel:
    """A stress workload with many deficit items (hard scheduling instances)."""
    return MarginValuationModel(
        cost_low=2.0, cost_high=12.0, margin_low=-0.5, margin_high=0.4
    )


_WORKLOADS: Dict[str, ValuationModel] = {}


def valuation_workload(name: str) -> ValuationModel:
    """Look up a named valuation workload.

    Valid names: ``ebay``, ``digital``, ``teamwork``, ``stress``, ``mixed``.
    """
    factories = {
        "ebay": ebay_auction_valuations,
        "digital": digital_goods_valuations,
        "teamwork": teamwork_service_valuations,
        "stress": stress_deficit_valuations,
        "mixed": mixed_goods_valuations,
    }
    if name not in factories:
        raise WorkloadError(
            f"unknown valuation workload {name!r}; valid names: {sorted(factories)}"
        )
    return factories[name]()


def workload_bundle(
    name: str, size: int, seed: Optional[int] = None
) -> GoodsBundle:
    """Sample one bundle from a named workload."""
    return make_bundle(valuation_workload(name), size, seed=seed)
