"""Unified scenario registry: every runnable workload, discoverable by name.

Mirrors the trust-backend registry of :mod:`repro.trust.backend` on the
workload side: each scenario/population/behaviour mix is a named,
parameterized :class:`ScenarioDefinition`.  The CLI lists the catalogue
(``repro list-scenarios``) and builds entries by name
(``repro run --scenario <name> --backend <name>``), and experiment code can
iterate :func:`list_scenarios` to sweep every registered workload without
hard-coding names.

New scenarios register themselves with :func:`register_scenario`; the
built-in catalogue covers the three application settings of the paper's
introduction plus three stress variants exercising the trust backends
differently (churn, witness collusion, heterogeneous goods).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import WorkloadError
from repro.workloads.scenarios import SCENARIO_NAMES, ScenarioSpec, build_scenario

__all__ = [
    "ScenarioDefinition",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "build_registered_scenario",
]


@dataclass(frozen=True)
class ScenarioDefinition:
    """One catalogue entry: a named, parameterized scenario builder.

    Attributes
    ----------
    name:
        Unique registry key (what the CLI accepts).
    summary:
        One-line description shown by ``repro list-scenarios``.
    tags:
        Free-form labels (e.g. which backend the scenario stresses).
    builder:
        Callable with the :func:`repro.workloads.scenarios.build_scenario`
        keyword signature (``size``, ``rounds``, ``dishonest_fraction``,
        ``defection_penalty``, ``seed``, ``backend``) returning a
        :class:`ScenarioSpec`.
    defaults:
        Parameter overrides applied before caller-supplied values.
    """

    name: str
    summary: str
    builder: Callable[..., ScenarioSpec]
    tags: Tuple[str, ...] = ()
    defaults: Mapping[str, object] = field(default_factory=dict)

    def build(self, **params: object) -> ScenarioSpec:
        """Build the scenario, layering ``params`` over the defaults."""
        merged: Dict[str, object] = dict(self.defaults)
        merged.update(params)
        return self.builder(**merged)


_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register_scenario(definition: ScenarioDefinition, replace: bool = False) -> None:
    """Add a scenario to the catalogue.

    Re-registering an existing name requires ``replace=True`` so typos do not
    silently shadow built-ins.
    """
    if not definition.name:
        raise WorkloadError("scenario name must be non-empty")
    if definition.name in _REGISTRY and not replace:
        raise WorkloadError(f"scenario {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition


def get_scenario(name: str) -> ScenarioDefinition:
    """Look up one catalogue entry by name."""
    definition = _REGISTRY.get(name)
    if definition is None:
        raise WorkloadError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return definition


def list_scenarios() -> Tuple[ScenarioDefinition, ...]:
    """All catalogue entries, in registration order."""
    return tuple(_REGISTRY.values())


def scenario_names() -> Tuple[str, ...]:
    """Names of all registered scenarios, in registration order."""
    return tuple(_REGISTRY)


def build_registered_scenario(
    name: str, backend: Optional[str] = None, **params: object
) -> ScenarioSpec:
    """Build a registered scenario by name with a chosen trust backend."""
    definition = get_scenario(name)
    if backend is not None:
        params["backend"] = backend
    return definition.build(**params)


def _builder(name: str) -> Callable[..., ScenarioSpec]:
    def build(**params: object) -> ScenarioSpec:
        return build_scenario(name, **params)  # type: ignore[arg-type]

    build.__name__ = f"build_{name.replace('-', '_')}"
    return build


_BUILTIN_DEFINITIONS = (
    ScenarioDefinition(
        name="ebay",
        summary="Physical big-ticket auction goods, random partner discovery.",
        builder=_builder("ebay"),
        tags=("paper", "auction"),
    ),
    ScenarioDefinition(
        name="p2p-file-trading",
        summary="Digital goods for money in a P2P system, trust-weighted discovery.",
        builder=_builder("p2p-file-trading"),
        tags=("paper", "digital"),
    ),
    ScenarioDefinition(
        name="teamwork",
        summary="Service trades with continuation value (ongoing collaborations).",
        builder=_builder("teamwork"),
        tags=("paper", "services"),
    ),
    ScenarioDefinition(
        name="high-churn",
        summary="Digital goods under constant arrival/departure; stale evidence "
        "stresses decay-weighted trust.",
        builder=_builder("high-churn"),
        tags=("stress", "churn", "decay-backend", "rebalance"),
        # Churn turnover keeps growing the interned id space; live shard
        # rebalancing is on by default so the partitions track it (splits
        # are score-invisible, so results are unchanged).
        defaults={"rebalance": "auto"},
    ),
    ScenarioDefinition(
        name="collusive-witness",
        summary="Malicious coalition floods spurious complaints about honest "
        "peers; stresses complaint-based trust.",
        builder=_builder("collusive-witness"),
        tags=("stress", "collusion", "complaint-backend"),
    ),
    ScenarioDefinition(
        name="mixed-goods",
        summary="Marketplace mixing physical, digital and service valuations "
        "in every bundle.",
        builder=_builder("mixed-goods"),
        tags=("stress", "marketplace", "heterogeneous"),
    ),
    ScenarioDefinition(
        name="sybil-coalition",
        summary="Fake-identity coalition vouches for itself via forged "
        "witness reports; stresses discounted witness aggregation.",
        builder=_builder("sybil-coalition"),
        tags=("stress", "sybil", "witness-plane", "evidence-plane"),
    ),
    ScenarioDefinition(
        name="flash-crowd",
        summary="Burst arrivals of unknown peers swamp the community; "
        "stresses cold-start trust and live shard rebalancing.",
        builder=_builder("flash-crowd"),
        tags=("stress", "churn", "cold-start", "sharding", "rebalance"),
        # The monotonically growing id space is the rebalancer's home
        # turf: hot shards split live as the crowd arrives (splits are
        # score-invisible, so results are unchanged).
        defaults={"rebalance": "auto"},
    ),
    ScenarioDefinition(
        name="partition-heal",
        summary="Community splits into two cliques with total cross-"
        "partition evidence loss, then heals; anti-entropy repair "
        "backfills the missed complaints and witness traffic.",
        builder=_builder("partition-heal"),
        tags=("stress", "partition", "repair", "evidence-plane"),
        defaults={"backend": "complaint"},
    ),
    ScenarioDefinition(
        name="fluctuating-behaviour",
        summary="Milking attack: peers build reputation honestly, then "
        "defect in bursts; stresses decay-weighted forgetting against "
        "repaired-but-late evidence.",
        builder=_builder("fluctuating-behaviour"),
        tags=("stress", "milking", "decay-backend"),
        defaults={"backend": "decay"},
    ),
)

for _definition in _BUILTIN_DEFINITIONS:
    register_scenario(_definition)

# The legacy static tuple and the catalogue must stay in lock step; a drift
# here means a scenario is runnable but undiscoverable (or vice versa).
if set(scenario_names()) != set(SCENARIO_NAMES):
    raise WorkloadError(
        "scenario registry and SCENARIO_NAMES diverged: "
        f"registry-only={sorted(set(scenario_names()) - set(SCENARIO_NAMES))}, "
        f"names-only={sorted(set(SCENARIO_NAMES) - set(scenario_names()))}"
    )
