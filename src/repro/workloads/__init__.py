"""Workload generators: valuations, populations and the scenario registry."""

from repro.workloads.populations import (
    PopulationSpec,
    build_population,
    honesty_map,
    population_factory,
)
from repro.workloads.registry import (
    ScenarioDefinition,
    build_registered_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.workloads.scenarios import SCENARIO_NAMES, ScenarioSpec, build_scenario
from repro.workloads.valuations import (
    MixtureValuationModel,
    digital_goods_valuations,
    ebay_auction_valuations,
    mixed_goods_valuations,
    stress_deficit_valuations,
    teamwork_service_valuations,
    valuation_workload,
    workload_bundle,
)

__all__ = [
    "ebay_auction_valuations",
    "digital_goods_valuations",
    "teamwork_service_valuations",
    "stress_deficit_valuations",
    "mixed_goods_valuations",
    "MixtureValuationModel",
    "valuation_workload",
    "workload_bundle",
    "PopulationSpec",
    "build_population",
    "population_factory",
    "honesty_map",
    "ScenarioSpec",
    "build_scenario",
    "SCENARIO_NAMES",
    "ScenarioDefinition",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "build_registered_scenario",
]
