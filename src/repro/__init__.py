"""Trust-Aware Cooperation — reproduction library.

A Python implementation of the trust-aware safe-exchange mechanism of
Despotovic, Aberer & Hauswirth (ICDCS 2002) together with every substrate the
paper depends on: Sandholm-style safe exchange planning, Bayesian and
complaint-based trust learning, decentralised (P-Grid style) reputation
storage, a discrete-event peer community simulator, a marketplace layer and
baseline exchange strategies.

Most users only need the re-exports below; the subpackages are:

``repro.core``
    Goods model, safety analysis, safe-exchange planner, trust-aware planner,
    decision making and price negotiation.
``repro.trust``
    Trust learning.  The pluggable layer is
    :mod:`repro.trust.backend` — a :class:`TrustBackend` interface with
    batched numpy updates (``update_many``) and vectorized queries
    (``scores_for``), three registered backends (``beta``, ``complaint``,
    ``decay``) and a factory registry.  The scalar models
    (:mod:`repro.trust.beta`, :mod:`repro.trust.complaint`) remain as the
    behavioural references the backends are property-tested against.
``repro.reputation``
    Reputation management: records, stores, reporting, manager façade.  The
    manager routes every trust read/write through the backend layer and
    ingests evidence in batches (``record_many``).
``repro.pgrid``
    Decentralised binary-trie storage substrate for reputation data.
``repro.simulation``
    Discrete-event simulator: engine, network, peers, behaviours, community.
    The community loop queues interaction outcomes per round and flushes
    them to the trust backends in one batch per peer per tick.
``repro.marketplace``
    Listings, matching, exchange execution with defection, accounting.
``repro.baselines``
    Non-trust-aware exchange strategies used for comparison.
``repro.workloads``
    Valuation, population and scenario generators, plus the scenario
    registry (:mod:`repro.workloads.registry`) the CLI's
    ``list-scenarios`` / ``run`` subcommands are driven by.
``repro.analysis``
    Statistics, table/series rendering and experiment helpers.

Layering (arrows point at dependencies)::

    cli ─> workloads(registry) ─> simulation ─> reputation ─> trust.backend
     │           │                    │             │              │
     │           └─> marketplace ─> core <──────────┘              │
     └─> analysis                                     pgrid <── reputation.store

``trust.backend`` is the narrow waist: every consumer above it reads and
writes trust through the backend interface, never through the scalar model
internals.
"""

from repro.core import (
    DecisionMaker,
    ExchangeAction,
    ExchangeRequirements,
    ExchangeSequence,
    ExchangeState,
    ExpectedLossBudgetPolicy,
    FractionalGainPolicy,
    Good,
    GoodsBundle,
    PartnerModel,
    PaymentPolicy,
    TrustAwareExchangePlanner,
    TrustAwarePlan,
    plan_exchange,
    plan_trust_aware_exchange,
    verify_sequence,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Good",
    "GoodsBundle",
    "ExchangeAction",
    "ExchangeState",
    "ExchangeSequence",
    "ExchangeRequirements",
    "PaymentPolicy",
    "plan_exchange",
    "verify_sequence",
    "DecisionMaker",
    "FractionalGainPolicy",
    "ExpectedLossBudgetPolicy",
    "PartnerModel",
    "TrustAwarePlan",
    "TrustAwareExchangePlanner",
    "plan_trust_aware_exchange",
]
