"""Trust-Aware Cooperation — reproduction library.

A Python implementation of the trust-aware safe-exchange mechanism of
Despotovic, Aberer & Hauswirth (ICDCS 2002) together with every substrate the
paper depends on: Sandholm-style safe exchange planning, Bayesian and
complaint-based trust learning, decentralised (P-Grid style) reputation
storage, a discrete-event peer community simulator, a marketplace layer and
baseline exchange strategies.

Most users only need the re-exports below; the subpackages are:

``repro.core``
    Goods model, safety analysis, safe-exchange planner, trust-aware planner,
    decision making and price negotiation.
``repro.trust``
    Trust learning: beta (Bayesian) and complaint-based models.
``repro.reputation``
    Reputation management: records, stores, reporting, manager façade.
``repro.pgrid``
    Decentralised binary-trie storage substrate for reputation data.
``repro.simulation``
    Discrete-event simulator: engine, network, peers, behaviours, community.
``repro.marketplace``
    Listings, matching, exchange execution with defection, accounting.
``repro.baselines``
    Non-trust-aware exchange strategies used for comparison.
``repro.workloads``
    Valuation, population and scenario generators.
``repro.analysis``
    Statistics, table/series rendering and experiment helpers.
"""

from repro.core import (
    DecisionMaker,
    ExchangeAction,
    ExchangeRequirements,
    ExchangeSequence,
    ExchangeState,
    ExpectedLossBudgetPolicy,
    FractionalGainPolicy,
    Good,
    GoodsBundle,
    PartnerModel,
    PaymentPolicy,
    TrustAwareExchangePlanner,
    TrustAwarePlan,
    plan_exchange,
    plan_trust_aware_exchange,
    verify_sequence,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Good",
    "GoodsBundle",
    "ExchangeAction",
    "ExchangeState",
    "ExchangeSequence",
    "ExchangeRequirements",
    "PaymentPolicy",
    "plan_exchange",
    "verify_sequence",
    "DecisionMaker",
    "FractionalGainPolicy",
    "ExpectedLossBudgetPolicy",
    "PartnerModel",
    "TrustAwarePlan",
    "TrustAwareExchangePlanner",
    "plan_trust_aware_exchange",
]
