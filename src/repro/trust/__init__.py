"""Trust learning: predicting partner behaviour from reputation evidence.

Two scalar reference models are provided, matching the two references the
paper points to for its assumed trust computation module:

* :class:`~repro.trust.beta.BetaTrustModel` — the Bayesian (beta-Bernoulli)
  model in the spirit of Mui et al. (HICSS 2002), and
* :class:`~repro.trust.complaint.ComplaintTrustModel` — the complaint-based
  P2P model of Aberer & Despotovic (CIKM 2001).

Production consumers go through the pluggable, vectorized
:class:`~repro.trust.backend.TrustBackend` layer instead (``beta``,
``complaint`` and ``decay`` backends with batched numpy updates); the scalar
models remain as the behavioural reference the backends are tested against.
"""

from repro.trust.backend import (
    BACKEND_NAMES,
    BetaTrustBackend,
    ComplaintTrustBackend,
    DecayTrustBackend,
    ScalarBetaBackendAdapter,
    TrustBackend,
    TrustObservation,
    backend_names,
    create_backend,
    register_backend,
)
from repro.trust.aggregation import (
    SparseWitnessMatrix,
    WitnessReport,
    combine_beta_evidence,
    combine_beta_evidence_matrix,
    pessimistic_trust,
    reports_to_matrix,
    stack_witness_beliefs,
    stack_witness_beliefs_sparse,
    validate_witness_matrix,
    weighted_mean_trust,
    witness_report_sums,
)
from repro.trust.beta import BetaBelief, BetaTrustModel
from repro.trust.complaint import (
    ComplaintAssessment,
    ComplaintCounts,
    ComplaintStore,
    ComplaintTrustModel,
    LocalComplaintStore,
    aggregate_witness_reports,
)
from repro.trust.decay import DecayModel, ExponentialDecay, NoDecay, SlidingWindowDecay
from repro.trust.sharding import (
    ROUTER_NAMES,
    HashShardRouter,
    RangeShardRouter,
    RebalanceEvent,
    RebalancePolicy,
    RingShardRouter,
    ShardedBackend,
    ShardRouter,
    ShardSplitError,
    create_router,
)
from repro.trust.evidence import (
    Complaint,
    EvidenceLog,
    InteractionOutcome,
    Observation,
)
from repro.trust.metrics import (
    ClassificationReport,
    brier_score,
    classification_report,
    mean_absolute_error,
    root_mean_squared_error,
)

# Imported last: the worker layer reaches into repro.simulation.repair for
# its journal/digest wire format, and repro.simulation imports back from
# this package — every other trust name must be bound before the cycle
# re-enters.
from repro.trust.workers import (
    WORKER_TRANSPORTS,
    HomeRowFilter,
    WorkerCrashError,
    WorkerShardedBackend,
    WorkerShardProxy,
)

__all__ = [
    # backend layer
    "TrustBackend",
    "TrustObservation",
    "BetaTrustBackend",
    "ComplaintTrustBackend",
    "DecayTrustBackend",
    "ScalarBetaBackendAdapter",
    "BACKEND_NAMES",
    "register_backend",
    "create_backend",
    "backend_names",
    # sharding
    "ShardRouter",
    "HashShardRouter",
    "RangeShardRouter",
    "RingShardRouter",
    "ROUTER_NAMES",
    "create_router",
    "RebalancePolicy",
    "RebalanceEvent",
    "ShardSplitError",
    "ShardedBackend",
    # worker distribution
    "WorkerShardedBackend",
    "WorkerShardProxy",
    "WorkerCrashError",
    "HomeRowFilter",
    "WORKER_TRANSPORTS",
    # evidence
    "InteractionOutcome",
    "Observation",
    "Complaint",
    "EvidenceLog",
    # decay
    "DecayModel",
    "NoDecay",
    "ExponentialDecay",
    "SlidingWindowDecay",
    # beta model
    "BetaBelief",
    "BetaTrustModel",
    # complaint model
    "ComplaintCounts",
    "ComplaintAssessment",
    "ComplaintStore",
    "LocalComplaintStore",
    "aggregate_witness_reports",
    "ComplaintTrustModel",
    # aggregation
    "WitnessReport",
    "combine_beta_evidence",
    "combine_beta_evidence_matrix",
    "stack_witness_beliefs",
    "stack_witness_beliefs_sparse",
    "SparseWitnessMatrix",
    "witness_report_sums",
    "reports_to_matrix",
    "validate_witness_matrix",
    "weighted_mean_trust",
    "pessimistic_trust",
    # metrics
    "mean_absolute_error",
    "root_mean_squared_error",
    "brier_score",
    "ClassificationReport",
    "classification_report",
]
