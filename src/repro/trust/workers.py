"""Multi-worker shard distribution: one process per trust shard.

The paper's reputation system is distributed by construction — trust data
lives on many peers, not in one address space — yet
:class:`~repro.trust.sharding.ShardedBackend` executes every shard inside
the calling process, so the GIL caps the whole trust pipeline at one core.
:class:`WorkerShardedBackend` lifts the same sharded layout across process
boundaries: each shard lives in its own ``multiprocessing`` worker and the
parent keeps only the router, so writes fan out over the transport and run
concurrently across cores while queries scatter/gather into caller order.

The deployment reuses the three mechanisms the sharded layer already has,
unchanged, as its distribution protocol:

* the per-shard ``shard-NNNN/*`` snapshot manifest is the checkpoint and
  handoff format — a worker checkpoints by streaming its manifest through
  the parent, and a :class:`~repro.trust.sharding.RebalancePolicy` split
  becomes a worker handoff (the hot worker snapshots, freshly spawned
  workers restore the successor states, the atomic router-table swap is
  the cutover);
* the ``(origin, seq)`` journal/digest machinery of
  :mod:`repro.simulation.repair` is the crash-recovery wire format — with
  ``recovery=True`` the parent journals every write batch per shard, and a
  killed worker is healed by respawning it from its last checkpoint
  manifest and gossip-backfilling exactly the journal entries the
  checkpoint digest does not cover, until
  :attr:`WorkerShardedBackend.effective_delivery_ratio` returns to 1.0;
* the :class:`~repro.distributed.transport.ShardTransport` interface keeps
  the medium pluggable — ``transport="process"`` uses pipes to real worker
  processes, ``transport="loopback"`` runs the identical protocol against
  in-process threads whose messages still round-trip through pickle (the
  test harness; nothing in the protocol precludes a socket transport).

Score invisibility is non-negotiable and holds by construction: batches are
partitioned by the same router, applied per shard in the same order, and
gathered back into caller order, so a distributed same-seed run is
bit-identical to the in-process sharded run (default layout; the documented
~1e-5 relative tolerance applies to ``compact`` float32 evidence, exactly
as in-process).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import traceback
import weakref
from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    NoReturn,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.distributed.transport import (
    PipeTransport,
    ShardTransport,
    loopback_pair,
)
from repro.exceptions import TrustModelError
from repro.trust.aggregation import validate_witness_matrix
from repro.trust.backend import (
    ComplaintTrustBackend,
    TrustBackend,
    TrustObservation,
    create_backend,
)
from repro.trust.beta import BetaBelief
from repro.trust.evidence import Complaint
from repro.trust.sharding import (
    RebalancePolicy,
    ShardedBackend,
    _matrix_columns,
    create_router,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.repair import (
        Digest,
        EvidenceEntry,
        EvidenceJournal,
        SequenceTracker,
    )


def _repair():
    """The crash-recovery wire-format module, imported lazily.

    ``repro.simulation`` imports back into the trust package (its peers
    construct trust backends), so pulling :mod:`repro.simulation.repair` in
    at import time would close an import cycle through whichever package
    the process happens to import first.  Recovery machinery is only
    needed at runtime; by then every package involved is fully initialised.
    """
    from repro.simulation import repair

    return repair


__all__ = [
    "WORKER_TRANSPORTS",
    "WorkerCrashError",
    "HomeRowFilter",
    "WorkerShardProxy",
    "WorkerShardedBackend",
]

#: Transport media selectable for a worker deployment.
WORKER_TRANSPORTS = ("process", "loopback")

_EMPTY_DIGEST: Digest = (0, frozenset())


class RemoteWorkerTraceback(Exception):
    """Carrier for a worker-side traceback, chained onto re-raised errors.

    Tracebacks do not survive pickling, so a worker error used to arrive
    at the parent with its stack silently dropped.  The worker now stamps
    the formatted traceback onto the exception before sending, and the
    parent re-raises ``from`` this carrier so the worker-side stack shows
    up in the chained report.
    """

    def __str__(self) -> str:
        return "worker-side traceback:\n" + str(self.args[0])


def _stamp_remote_traceback(exc: BaseException) -> BaseException:
    """Attach the formatted traceback before the exception crosses the wire."""
    try:
        exc._remote_traceback = "".join(  # type: ignore[attr-defined]
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    except (AttributeError, TypeError):  # slots-only or exotic exceptions
        pass
    return exc


def _raise_remote(exc: BaseException) -> "NoReturn":
    """Re-raise a worker-sent exception, chaining its remote traceback."""
    remote = None
    try:
        remote = exc.__dict__.pop("_remote_traceback", None)
    except AttributeError:  # no __dict__ (slots-only exception)
        pass
    if remote is not None:
        raise exc from RemoteWorkerTraceback(remote)
    raise exc


class WorkerCrashError(TrustModelError):
    """A shard's worker is gone (crashed, killed, or its transport broke).

    Without ``recovery=True`` any operation touching the dead shard raises
    this; with recovery enabled, writes keep accumulating in the parent's
    journal and :meth:`WorkerShardedBackend.heal_workers` repairs the
    partition.
    """


class HomeRowFilter:
    """Picklable "is this agent homed in shard N" predicate.

    The in-process sharded backend restricts complaint shards with a
    closure over its live router; a closure cannot cross a pipe, so worker
    shards get this self-contained equivalent built from the router's
    serialisable boundary state.  The frozen layout stays correct across
    later splits because a split only moves keys *off the split shard* —
    every other shard's home range is untouched, and the split shard itself
    is replaced by successors carrying fresh filters for the new layout.
    """

    def __init__(
        self,
        router_name: str,
        num_shards: int,
        state: Optional[np.ndarray],
        home: int,
    ):
        self._router_name = router_name
        self._num_shards = num_shards
        self._state = state
        self._home = home
        self._router = create_router(router_name, num_shards, state=state)
        self._cache: Dict[str, int] = {}

    @property
    def home(self) -> int:
        return self._home

    def __call__(self, agent_id: str) -> bool:
        index = self._cache.get(agent_id)
        if index is None:
            index = self._cache[agent_id] = self._router.shard_of(agent_id)
        return index == self._home

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "router_name": self._router_name,
            "num_shards": self._num_shards,
            "state": self._state,
            "home": self._home,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(**state)  # type: ignore[misc]


# ----------------------------------------------------------------------
# Wire codecs: columnar batches pickle an order of magnitude faster than
# lists of frozen dataclass instances, and the parent's packing cost is
# what serialises the otherwise-parallel write path.
# ----------------------------------------------------------------------
def _pack_observations(
    observations: Sequence[TrustObservation],
) -> Tuple[List[str], List[str], np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    count = len(observations)
    observers = [o.observer_id for o in observations]
    subjects = [o.subject_id for o in observations]
    honest = np.fromiter((o.honest for o in observations), dtype=bool, count=count)
    times = np.fromiter(
        (o.timestamp for o in observations), dtype=np.float64, count=count
    )
    weights = np.fromiter(
        (o.weight for o in observations), dtype=np.float64, count=count
    )
    filed = np.fromiter(
        (
            -1 if o.files_complaint is None else int(o.files_complaint)
            for o in observations
        ),
        dtype=np.int8,  # repro: allow(DTYPE001) — tri-state complaint flag wire encoding; unpacked to bool/None before any evidence math
        count=count,
    )
    return observers, subjects, honest, times, weights, filed


def _unpack_observations(payload: Tuple) -> List[TrustObservation]:
    observers, subjects, honest, times, weights, filed = payload
    return [
        TrustObservation(
            observer_id=observer,
            subject_id=subject,
            honest=is_honest,
            timestamp=timestamp,
            weight=weight,
            files_complaint=None if files < 0 else bool(files),
        )
        for observer, subject, is_honest, timestamp, weight, files in zip(
            observers,
            subjects,
            honest.tolist(),
            times.tolist(),
            weights.tolist(),
            filed.tolist(),
        )
    ]


def _pack_complaints(
    complaints: Sequence[Complaint],
) -> Tuple[List[str], List[str], np.ndarray]:
    return (
        [c.complainant_id for c in complaints],
        [c.accused_id for c in complaints],
        np.fromiter(
            (c.timestamp for c in complaints),
            dtype=np.float64,
            count=len(complaints),
        ),
    )


def _unpack_complaints(payload: Tuple) -> List[Complaint]:
    complainants, accused, timestamps = payload
    return [
        Complaint(
            complainant_id=complainant, accused_id=accused_id, timestamp=timestamp
        )
        for complainant, accused_id, timestamp in zip(
            complainants, accused, timestamps.tolist()
        )
    ]


# ----------------------------------------------------------------------
# Worker side: a message loop hosting one inner backend.
# ----------------------------------------------------------------------
_WRITE_DECODERS = {
    "update_many": _unpack_observations,
    "record_complaints": _unpack_complaints,
}

#: Fused complaint-family query paths: the parent computes the global
#: median reference once and each shard maps its own metrics through the
#: scoring/decision rule in a single round trip (two RPCs fused into one).
_COMPOSITES = {
    "ping": lambda backend: None,
    "len": lambda backend: len(backend),  # type: ignore[arg-type]
    "metric_scores": lambda backend, subjects, reference: backend.scores_from_metrics(
        backend.metrics_for(subjects), reference
    ),
    "metric_decisions": (
        lambda backend, subjects, reference: backend.decisions_from_metrics(
            backend.metrics_for(subjects), reference
        )
    ),
    "witness_scores": (
        lambda backend, subjects, matrix, discounts, reference: (
            backend.scores_from_metrics(
                backend.witness_metrics_for(subjects, matrix, discounts), reference
            )
        )
    ),
}


def _apply_write(backend: TrustBackend, method: str, payload: Tuple) -> int:
    decoder = _WRITE_DECODERS.get(method)
    if decoder is None:
        raise TrustModelError(f"unknown worker write op {method!r}")
    batch = decoder(payload)
    getattr(backend, method)(batch)
    return len(batch)


def _dispatch(backend: TrustBackend, method: str, args: Tuple) -> Any:
    composite = _COMPOSITES.get(method)
    if composite is not None:
        return composite(backend, *args)
    return getattr(backend, method)(*args)


def _worker_main(transport: ShardTransport, kind: str, params: Dict[str, Any]) -> None:
    """Serve one shard over ``transport`` until told to stop (or cut off).

    Writes are fire-and-forget: the parent never waits for them, which is
    what lets a scattered batch run on every worker concurrently.  A write
    failure is held and surfaced on the next synchronous call, after which
    the worker keeps serving.  Calls and snapshot streams reply in FIFO
    order — the only ordering the proxy relies on.
    """
    try:
        backend = create_backend(kind, **params)
    except Exception as exc:  # constructor errors surface at the parent
        try:
            transport.send(("err", _stamp_remote_traceback(exc)))
        except (BrokenPipeError, OSError):
            pass
        transport.close()
        return
    meta: Dict[str, Any] = {
        "complaint_family": isinstance(backend, ComplaintTrustBackend)
    }
    if meta["complaint_family"]:
        meta["tolerance_factor"] = backend.tolerance_factor  # type: ignore[attr-defined]
        meta["metric_mode"] = backend.metric_mode  # type: ignore[attr-defined]
    pending_error: Optional[Exception] = None
    # Worker-local op tallies shipped to the parent on demand via the
    # ``__stats__`` pseudo-call (see WorkerShardedBackend.worker_stats).
    stats: Dict[str, int] = {
        "writes": 0,
        "write_units": 0,
        "calls": 0,
        "snapshots": 0,
    }
    try:
        transport.send(("ready", meta))
        while True:
            try:
                message = transport.recv()
            except EOFError:
                break
            op = message[0]
            if op == "write":
                if pending_error is None:
                    try:
                        units = _apply_write(backend, message[1], message[2])
                    except Exception as exc:
                        pending_error = _stamp_remote_traceback(exc)
                    else:
                        stats["writes"] += 1
                        stats["write_units"] += units
            elif op == "call":
                if message[1] == "__stats__":
                    # Telemetry probe: must not consume a held write error
                    # (the error belongs to the next *real* call).
                    payload = dict(stats)
                    payload["pending_error"] = 1 if pending_error else 0
                    transport.send(("ok", payload))
                    continue
                if pending_error is not None:
                    error, pending_error = pending_error, None
                    transport.send(("err", error))
                    continue
                stats["calls"] += 1
                try:
                    result = _dispatch(backend, message[1], message[2])
                except Exception as exc:
                    transport.send(("err", _stamp_remote_traceback(exc)))
                else:
                    transport.send(("ok", result))
            elif op == "snap":
                stats["snapshots"] += 1
                try:
                    for key, value in backend.snapshot_items():
                        transport.send(("item", key, value))
                except Exception as exc:
                    transport.send(("err", _stamp_remote_traceback(exc)))
                transport.send(("end",))
            elif op == "stop":
                transport.send(("bye",))
                break
            else:
                transport.send(
                    ("err", TrustModelError(f"unknown worker op {op!r}"))
                )
    except (BrokenPipeError, OSError):
        pass  # parent went away; nothing left to serve
    finally:
        transport.close()


def _worker_entry(connection: Any, kind: str, params: Dict[str, Any]) -> None:
    """Top-level process target (spawn-safe: importable, picklable args)."""
    _worker_main(PipeTransport(connection), kind, params)


def _tracker_from_digest(digest: "Digest") -> "SequenceTracker":
    tracker = _repair().SequenceTracker()
    tracker.contiguous = digest[0]
    tracker.extras = set(digest[1])
    return tracker


def _stop_proxies(registry: List["WorkerShardProxy"]) -> None:
    for proxy in list(registry):
        proxy.stop()
    registry.clear()


# ----------------------------------------------------------------------
# Parent side: a TrustBackend facade over one remote shard.
# ----------------------------------------------------------------------
class WorkerShardProxy(TrustBackend):
    """The parent-side handle of one shard-hosting worker.

    Presents the ``TrustBackend`` interface (plus the complaint-family
    extras the sharded wrapper needs) by translating calls into transport
    messages.  Writes are asynchronous sends; reads are synchronous
    request/reply pairs, with the two-phase :meth:`ask`/:meth:`result`
    split exposed so the owning backend can scatter a query to every
    worker before collecting any reply.
    """

    name = "worker-shard"

    def __init__(
        self,
        transport: ShardTransport,
        runner: Any,
        label: str,
        spawn_params: Dict[str, Any],
        journaling: bool = False,
    ):
        self._transport = transport
        self.runner = runner
        self.label = label
        self.spawn_params = spawn_params
        self.dead = False
        self.restrict_filter: Optional[HomeRowFilter] = None
        # Telemetry only: perf_counter stamps of outstanding ask()s, FIFO
        # with the reply channel.  Empty whenever telemetry is off.  The
        # per-label metric names are precomputed here so the hot RPC path
        # never builds strings per call (TEL001).
        self._pending: "deque[float]" = deque()
        self._rpc_gauge_metric = "worker.rpc.in_flight_max." + label
        self._rpc_span_metric = "worker.rpc.round_trip." + label
        # Recovery bookkeeping (populated only when journaling is on): the
        # journal holds every write batch ever routed here, ``applied``
        # tracks which of them the live worker has provably received, and
        # the checkpoint pair is the durable baseline a respawn starts from.
        self.journal: Optional["EvidenceJournal"] = (
            _repair().EvidenceJournal() if journaling else None
        )
        self.applied: Optional["SequenceTracker"] = (
            _repair().SequenceTracker() if journaling else None
        )
        self.seq = 0
        self.checkpoint_manifest: Optional[Dict[str, np.ndarray]] = None
        self.checkpoint_digest: Digest = _EMPTY_DIGEST
        reply = self._recv()
        if reply[0] == "err":
            self.stop()
            _raise_remote(reply[1])
        if reply[0] != "ready":
            self.stop()
            raise TrustModelError(
                f"worker {label!r} sent {reply[0]!r} instead of the ready handshake"
            )
        meta = reply[1]
        self.complaint_family: bool = bool(meta["complaint_family"])
        self._tolerance_factor = meta.get("tolerance_factor")
        self._metric_mode = meta.get("metric_mode")

    # -- liveness and transport plumbing --------------------------------
    def alive(self) -> bool:
        """Whether the worker looks up (cheap check, no message exchange)."""
        if self.dead:
            return False
        runner = self.runner
        if runner is not None and not runner.is_alive():
            return False
        return True

    def mark_dead(self) -> None:
        """Note the worker's death; roll ``applied`` back to the checkpoint.

        Send success only proves a batch reached the pipe buffer, not the
        worker; once the worker is dead, the checkpoint digest is the only
        thing provably applied, so everything past it goes back into the
        repairable gap.
        """
        if self.dead:
            return
        self.dead = True
        if self.applied is not None:
            self.applied = _tracker_from_digest(self.checkpoint_digest)

    def _crash(self, cause: Optional[BaseException]) -> WorkerCrashError:
        self.mark_dead()
        error = WorkerCrashError(f"worker {self.label!r} is down")
        error.__cause__ = cause
        return error

    def _send(self, message: Tuple) -> None:
        if self.dead:
            raise self._crash(None)
        try:
            self._transport.send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise self._crash(exc)

    def _recv(self) -> Tuple:
        if self.dead:
            raise self._crash(None)
        try:
            return self._transport.recv()
        except (EOFError, OSError) as exc:
            raise self._crash(exc)

    # -- two-phase request/reply ----------------------------------------
    def ask(self, method: str, *args: Any) -> None:
        """Send a request without waiting (phase one of a parallel gather)."""
        self._send(("call", method, args))
        telemetry = self.telemetry
        if telemetry.enabled:
            self._pending.append(time.perf_counter())  # repro: allow(DET001) — RPC latency stamp, telemetry timings section only
            telemetry.count("worker.rpc.calls")
            telemetry.gauge_max(self._rpc_gauge_metric, len(self._pending))

    def result(self) -> Any:
        """Collect the reply of the oldest outstanding :meth:`ask`."""
        reply = self._recv()
        if self._pending:
            started = self._pending.popleft()
            self.telemetry.observe_seconds(
                self._rpc_span_metric,
                time.perf_counter() - started,  # repro: allow(DET001) — RPC latency stamp, telemetry timings section only
            )
        tag = reply[0]
        if tag == "ok":
            return reply[1]
        if tag == "err":
            _raise_remote(reply[1])
        raise TrustModelError(f"unexpected worker reply {tag!r}")

    def call(self, method: str, *args: Any) -> Any:
        self.ask(method, *args)
        return self.result()

    # -- writes (fire-and-forget, journaled under recovery) -------------
    def _write(self, method: str, payload: Tuple) -> None:
        seq = None
        if self.journal is not None:
            self.seq += 1
            seq = self.seq
            self.journal.add(
                _repair().EvidenceEntry(
                    origin_id=self.label,
                    seq=seq,
                    recipient_id=self.label,
                    kind=method,
                    payload=payload,
                    emitted_at=0.0,
                )
            )
        if self.dead:
            if self.journal is None:
                raise self._crash(None)
            return  # journaled; heal_workers() will backfill it
        try:
            self._transport.send(("write", method, payload))
        except (BrokenPipeError, EOFError, OSError) as exc:
            if self.journal is None:
                raise self._crash(exc)
            self.mark_dead()
            return
        if self.applied is not None and seq is not None:
            self.applied.add(seq)

    def replay(self, entry: EvidenceEntry) -> None:
        """Re-send one journaled write batch (the gossip-backfill push)."""
        self._send(("write", entry.kind, entry.payload))
        if self.applied is not None:
            self.applied.add(entry.seq)

    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        if not observations:
            return
        self._write("update_many", _pack_observations(observations))

    def record_complaints(self, complaints: Sequence[Complaint]) -> None:
        if not complaints:
            return
        self._write("record_complaints", _pack_complaints(complaints))

    def file_complaint(self, complaint: Complaint) -> None:
        self.record_complaints((complaint,))

    # -- reads ------------------------------------------------------------
    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        return self.call("scores_for", subject_ids, now)

    def trust_decisions(
        self,
        subject_ids: Sequence[str],
        threshold: float = 0.5,
        now: Optional[float] = None,
    ) -> np.ndarray:
        return self.call("trust_decisions", subject_ids, threshold, now)

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        return self.call(
            "aggregate_witness_reports",
            subject_ids,
            witness_belief_matrix,
            discount_vector,
            now,
        )

    def known_subjects(self) -> Tuple[str, ...]:
        return tuple(self.call("known_subjects"))

    def row_count(self) -> int:
        return int(self.call("row_count"))

    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        return self.call("belief", subject_id, now)

    def observation_count(self, subject_id: str) -> int:
        return int(self.call("observation_count", subject_id))

    # -- complaint-family surface ----------------------------------------
    @property
    def tolerance_factor(self) -> float:
        return self._tolerance_factor  # type: ignore[return-value]

    @property
    def metric_mode(self) -> str:
        return self._metric_mode  # type: ignore[return-value]

    def restrict_rows(self, row_filter: HomeRowFilter) -> None:
        self.restrict_filter = row_filter
        self.call("restrict_rows", row_filter)

    def metrics_for(self, subject_ids: Sequence[str]) -> np.ndarray:
        return self.call("metrics_for", subject_ids)

    def metric_values_in_store(self) -> np.ndarray:
        return self.call("metric_values_in_store")

    def witness_metrics_for(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
    ) -> np.ndarray:
        return self.call(
            "witness_metrics_for",
            subject_ids,
            witness_belief_matrix,
            discount_vector,
        )

    def scores_from_metrics(
        self, metrics: np.ndarray, reference: float
    ) -> np.ndarray:
        return self.call("scores_from_metrics", metrics, reference)

    def decisions_from_metrics(
        self, metrics: np.ndarray, reference: float
    ) -> np.ndarray:
        return self.call("decisions_from_metrics", metrics, reference)

    def reference_metric(self) -> float:
        return float(self.call("reference_metric"))

    def counts(self, agent_id: str) -> Tuple[int, int]:
        return tuple(self.call("counts", agent_id))  # type: ignore[return-value]

    def complaints_about(self, agent_id: str) -> Sequence[Complaint]:
        return self.call("complaints_about", agent_id)

    def complaints_by(self, agent_id: str) -> Sequence[Complaint]:
        return self.call("complaints_by", agent_id)

    def known_agents(self) -> Sequence[str]:
        return self.call("known_agents")

    def all_complaints(self) -> Tuple[Complaint, ...]:
        return tuple(self.call("all_complaints"))

    def __len__(self) -> int:
        return int(self.call("len"))

    # -- persistence ------------------------------------------------------
    def snapshot_items(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Stream the worker's manifest without materialising it here.

        Pending writes are applied first (the stream request rides the same
        FIFO channel), so the manifest is consistent with everything sent
        before it.  Abandoning the generator early drains the remaining
        stream to keep the channel in sync.
        """
        self._send(("snap",))
        finished = False
        try:
            while True:
                reply = self._recv()
                tag = reply[0]
                if tag == "end":
                    finished = True
                    return
                if tag == "err":
                    _raise_remote(reply[1])
                yield reply[1], reply[2]
        finally:
            if not finished and not self.dead:
                # Abandoned stream: drain to the end marker so the FIFO
                # channel stays in sync for the next caller.  Only channel
                # death is survivable here (EXC001) — the proxy is already
                # marked dead by _recv, and any other error must surface.
                try:
                    while self._recv()[0] != "end":
                        pass
                except (WorkerCrashError, EOFError, OSError):
                    pass

    def snapshot(self) -> Dict[str, np.ndarray]:
        return dict(self.snapshot_items())

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        self.call("restore", state)

    # -- shutdown ---------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Tell the worker to exit and release the transport (idempotent)."""
        if not self.dead:
            try:
                self._transport.send(("stop",))
                if self._transport.poll(timeout):
                    self._transport.recv()  # the "bye"
            except (BrokenPipeError, EOFError, OSError):
                pass
        self.dead = True
        try:
            self._transport.close()
        except OSError:
            pass
        runner = self.runner
        if runner is not None:
            runner.join(timeout)
            if runner.is_alive() and hasattr(runner, "terminate"):
                runner.terminate()
                runner.join(timeout)

    def describe(self) -> str:
        return f"worker-shard({self.label})"


# ----------------------------------------------------------------------
# The distributed backend
# ----------------------------------------------------------------------
class WorkerShardedBackend(ShardedBackend):
    """A :class:`ShardedBackend` whose shards live in worker processes.

    Same interface, same routing, same snapshot format and — by
    construction — the same scores as the in-process sharded backend; the
    difference is purely *where* the shards execute.  ``update_many`` /
    ``record_complaints`` partition a batch exactly as the in-process
    wrapper does and hand each bucket to its home worker as an
    asynchronous message, so the per-shard numpy work runs concurrently
    across cores; queries scatter in one pass (every worker computes its
    partition simultaneously) and gather replies back into caller order.

    Parameters beyond :class:`ShardedBackend`'s:

    transport:
        ``"process"`` (real worker processes over pipes) or ``"loopback"``
        (in-process threads over the pickling loopback — the deterministic
        test medium).
    recovery:
        Journal every write batch per shard so a crashed worker can be
        healed: :meth:`checkpoint` stores each worker's manifest and the
        digest of what it provably covers, :meth:`heal_workers` respawns
        dead workers from their manifests and gossip-backfills the journal
        entries the digest misses, and :attr:`effective_delivery_ratio`
        reports the journal coverage of the live fleet (1.0 = fully
        healed).

    Use as a context manager (or call :meth:`close`) to stop the workers
    deterministically; a garbage-collected backend shuts its fleet down
    via a finalizer as a backstop.
    """

    def __init__(
        self,
        kind: str,
        num_shards: int,
        router: object = "hash",
        rebalance: Optional[RebalancePolicy] = None,
        transport: str = "process",
        recovery: bool = False,
        **shard_params: object,
    ):
        if transport not in WORKER_TRANSPORTS:
            raise TrustModelError(
                f"worker transport must be one of {WORKER_TRANSPORTS}, "
                f"got {transport!r}"
            )
        self._transport_kind = transport
        self._recovery = bool(recovery)
        self._spawn_counter = itertools.count()
        self._last_worker_stats: Dict[str, Dict[str, int]] = {}
        self._healed_total = 0
        self._proxy_registry: List[WorkerShardProxy] = []
        self._finalizer = weakref.finalize(
            self, _stop_proxies, self._proxy_registry
        )
        if transport == "process":
            methods = multiprocessing.get_all_start_methods()
            self._mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
        else:
            self._mp_context = None
        super().__init__(
            kind, num_shards, router=router, rebalance=rebalance, **shard_params
        )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    @property
    def transport_kind(self) -> str:
        return self._transport_kind

    @property
    def recovery(self) -> bool:
        return self._recovery

    def _create_shard(self, **overrides: object) -> TrustBackend:
        params = dict(self._shard_params)
        params.update(overrides)
        label = f"worker-{next(self._spawn_counter):04d}"
        proxy = self._spawn(label, params)
        if self.telemetry.enabled:
            proxy.bind_telemetry(self.telemetry)
        self._proxy_registry.append(proxy)
        return proxy

    def _spawn(self, label: str, params: Dict[str, object]) -> WorkerShardProxy:
        if self._transport_kind == "loopback":
            parent_end, worker_end = loopback_pair()
            runner: Any = threading.Thread(
                target=_worker_main,
                args=(worker_end, self._kind, params),
                name=label,
                daemon=True,
            )
            runner.start()
            transport: ShardTransport = parent_end
        else:
            parent_connection, child_connection = self._mp_context.Pipe()
            runner = self._mp_context.Process(
                target=_worker_entry,
                args=(child_connection, self._kind, params),
                name=label,
                daemon=True,
            )
            runner.start()
            child_connection.close()
            transport = PipeTransport(parent_connection)
        return WorkerShardProxy(
            transport, runner, label, dict(params), journaling=self._recovery
        )

    def _detect_complaint_family(self) -> bool:
        return bool(self._shards[0].complaint_family)  # type: ignore[attr-defined]

    def _restrict_one(self, shard: TrustBackend, home: int) -> None:
        shard.restrict_rows(  # type: ignore[attr-defined]
            HomeRowFilter(
                self._router.name,
                self._router.num_shards,
                self._router.state(),
                home,
            )
        )

    def _reap(self) -> None:
        """Stop workers whose shards were replaced (split/restore handoffs)."""
        live = {id(shard) for shard in self._shards}
        retired = [
            proxy for proxy in self._proxy_registry if id(proxy) not in live
        ]
        if not retired:
            return
        self._proxy_registry[:] = [
            proxy for proxy in self._proxy_registry if id(proxy) in live
        ]
        for proxy in retired:
            proxy.stop()

    def close(self) -> None:
        """Stop every worker and release the transports (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "WorkerShardedBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def flush(self) -> None:
        """Barrier: every write sent so far has been applied by its worker.

        Also surfaces any held worker-side write error.  Benchmarks (and
        anything timing the write path) must flush before reading the
        clock — the scatter itself returns before the workers finish.
        Under telemetry the barrier doubles as the stats ship-back point:
        each flush refreshes the parent-side cache of worker op tallies.
        """
        self._scatter_gather(
            [(shard, "ping", ()) for shard in self._shards]
        )
        if self.telemetry.enabled:
            self._last_worker_stats = self.worker_stats()

    def worker_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-worker op tallies fetched over the transport (live workers).

        Each worker counts writes, write units, synchronous calls, and
        snapshot streams on its side of the pipe; the ``__stats__``
        pseudo-call ships them back without perturbing held write errors.
        Dead workers are skipped (their last shipped tallies survive in
        the telemetry cache refreshed by :meth:`flush`).
        """
        stats: Dict[str, Dict[str, int]] = {}
        for proxy in self._shards:
            if not proxy.alive():  # type: ignore[attr-defined]
                continue
            try:
                stats[proxy.label] = dict(  # type: ignore[attr-defined]
                    proxy.call("__stats__")  # type: ignore[attr-defined]
                )
            except (WorkerCrashError, TrustModelError):
                continue
        return stats

    def bind_telemetry(self, registry: Any) -> None:
        super().bind_telemetry(registry)
        if registry.enabled:
            registry.add_view("worker", self._worker_view)

    def _worker_view(self) -> Dict[str, float]:
        """Registry view: fleet shape plus the last shipped worker tallies."""
        view: Dict[str, float] = {
            "workers": len(self._shards),
            "healed_workers": self._healed_total,
        }
        for label, stats in sorted(self._last_worker_stats.items()):
            for key, value in stats.items():
                view[label + "." + key] = value
        if self._recovery:
            view["journal_entries"] = sum(
                len(proxy.journal)  # type: ignore[attr-defined]
                for proxy in self._shards
            )
            view["journal_applied"] = sum(
                len(proxy.applied)  # type: ignore[attr-defined]
                for proxy in self._shards
            )
        return view

    def _config_parts(self) -> List[str]:
        parts = [
            part
            for part in super()._config_parts()
            if part not in ("workers 0", "recovery off")
        ]
        parts.append(
            f"workers {len(self._shards)} ({self._transport_kind})"
        )
        parts.append("recovery " + ("on" if self._recovery else "off"))
        return parts

    # ------------------------------------------------------------------
    # Parallel scatter/gather plumbing
    # ------------------------------------------------------------------
    def _scatter_gather(
        self, requests: Sequence[Tuple[WorkerShardProxy, str, Tuple]]
    ) -> List[Any]:
        """Issue every request before collecting any reply.

        Failures are collected, not fast-raised: every successfully asked
        worker still gets its reply consumed, so one crashed or erroring
        shard cannot leave another proxy's channel holding a stale reply.
        """
        error: Optional[BaseException] = None
        asked: List[WorkerShardProxy] = []
        for proxy, method, args in requests:
            if error is not None:
                break
            try:
                proxy.ask(method, *args)
                asked.append(proxy)
            except WorkerCrashError as exc:
                error = exc
        results: List[Any] = []
        for proxy in asked:
            try:
                results.append(proxy.result())
            except BaseException as exc:
                if error is None:
                    error = exc
                results.append(None)
        if error is not None:
            raise error
        return results

    # ------------------------------------------------------------------
    # Reads: column-partitioned scatter, parallel workers, ordered gather
    # ------------------------------------------------------------------
    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        out = np.zeros(len(subject_ids))
        if not len(subject_ids):
            return out
        groups = self._partition(subject_ids)
        if self._complaint_family:
            reference = self.reference_metric()
            requests = [
                (self._shards[index], "metric_scores", (subjects, reference))
                for index, _, subjects in groups
            ]
        else:
            requests = [
                (self._shards[index], "scores_for", (subjects, now))
                for index, _, subjects in groups
            ]
        for (_, positions, _), scores in zip(
            groups, self._scatter_gather(requests)
        ):
            out[positions] = scores
        return out

    def trust_decisions(
        self,
        subject_ids: Sequence[str],
        threshold: float = 0.5,
        now: Optional[float] = None,
    ) -> np.ndarray:
        out = np.zeros(len(subject_ids), dtype=bool)
        if not len(subject_ids):
            return out
        groups = self._partition(subject_ids)
        if self._complaint_family:
            reference = self.reference_metric()
            requests = [
                (self._shards[index], "metric_decisions", (subjects, reference))
                for index, _, subjects in groups
            ]
        else:
            requests = [
                (
                    self._shards[index],
                    "trust_decisions",
                    (subjects, threshold, now),
                )
                for index, _, subjects in groups
            ]
        for (_, positions, _), decisions in zip(
            groups, self._scatter_gather(requests)
        ):
            out[positions] = decisions
        return out

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        matrix, discounts = validate_witness_matrix(
            len(subject_ids),
            witness_belief_matrix,
            discount_vector,
            positive=not self._complaint_family,
        )
        out = np.zeros(len(subject_ids))
        if not len(subject_ids):
            return out
        groups = self._partition(subject_ids)
        if self._complaint_family:
            reference = self.reference_metric()
            requests = [
                (
                    self._shards[index],
                    "witness_scores",
                    (
                        subjects,
                        _matrix_columns(matrix, positions),
                        discounts,
                        reference,
                    ),
                )
                for index, positions, subjects in groups
            ]
        else:
            requests = [
                (
                    self._shards[index],
                    "aggregate_witness_reports",
                    (subjects, _matrix_columns(matrix, positions), discounts, now),
                )
                for index, positions, subjects in groups
            ]
        for (_, positions, _), scores in zip(
            groups, self._scatter_gather(requests)
        ):
            out[positions] = scores
        return out

    def known_subjects(self) -> Tuple[str, ...]:
        partitions = self._scatter_gather(
            [(shard, "known_subjects", ()) for shard in self._shards]
        )
        return tuple(
            subject for partition in partitions for subject in partition
        )

    def reference_metric(self) -> float:
        self._require_complaint_family()
        version, cached = self._reference_cache
        if version == self._writes:
            return cached
        values = np.concatenate(
            self._scatter_gather(
                [(shard, "metric_values_in_store", ()) for shard in self._shards]
            )
        )
        reference = float(np.median(values)) if values.size else 0.0
        self._reference_cache = (self._writes, reference)
        return reference

    def shard_row_counts(self) -> np.ndarray:
        return np.array(
            self._scatter_gather(
                [(shard, "row_count", ()) for shard in self._shards]
            ),
            dtype=np.int64,
        )

    def __len__(self) -> int:
        return sum(
            self._scatter_gather([(shard, "len", ()) for shard in self._shards])
        )

    def describe(self) -> str:
        suffix = ""
        if self._rebalance is not None:
            suffix += f", rebalance@{self._rebalance.threshold:g}"
        if self._recovery:
            suffix += ", recovery"
        return (
            f"workers({len(self._shards)}x{self._kind}, "
            f"{self._router.name}, {self._transport_kind}{suffix})"
        )

    # ------------------------------------------------------------------
    # Splits are worker handoffs; restores re-baseline the fleet
    # ------------------------------------------------------------------
    def split_shard(self, index: int) -> int:
        new_index = super().split_shard(index)
        # The hot worker was replaced by two freshly restored successors;
        # retire it.  Under recovery the successors' restored state is
        # their new durable baseline (their journals start empty).
        self._reap()
        if self._recovery:
            for proxy in (self._shards[index], self._shards[-1]):
                self._rebaseline(proxy)  # type: ignore[arg-type]
        return new_index

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        super().restore(state)
        self._reap()
        self._rebaseline_all()

    def restore_items(
        self, items: Sequence[Tuple[str, np.ndarray]]
    ) -> None:
        super().restore_items(items)
        self._reap()
        self._rebaseline_all()

    def _rebaseline_all(self) -> None:
        if not self._recovery:
            return
        for proxy in self._shards:
            self._rebaseline(proxy)  # type: ignore[arg-type]

    def _rebaseline(self, proxy: WorkerShardProxy) -> None:
        """Reset a worker's recovery baseline to its current state."""
        proxy.journal = _repair().EvidenceJournal()
        proxy.applied = _repair().SequenceTracker()
        proxy.seq = 0
        proxy.checkpoint_manifest = dict(proxy.snapshot_items())
        proxy.checkpoint_digest = _EMPTY_DIGEST

    # ------------------------------------------------------------------
    # Crash recovery: checkpoint, heal, delivery accounting
    # ------------------------------------------------------------------
    def _require_recovery(self) -> None:
        if not self._recovery:
            raise TrustModelError(
                "worker recovery is disabled; construct the backend with "
                "recovery=True"
            )

    def _poll_liveness(self) -> None:
        for proxy in self._shards:
            if not proxy.alive():  # type: ignore[attr-defined]
                proxy.mark_dead()  # type: ignore[attr-defined]

    @property
    def effective_delivery_ratio(self) -> float:
        """Fraction of journaled write batches the live fleet has applied.

        1.0 in steady state; drops when a worker dies (everything past its
        last checkpoint goes back into the repairable gap) and returns to
        1.0 once :meth:`heal_workers` has drained the backfill.
        """
        if not self._recovery:
            return 1.0
        self._poll_liveness()
        total = sum(len(proxy.journal) for proxy in self._shards)  # type: ignore[attr-defined]
        if total == 0:
            return 1.0
        applied = sum(len(proxy.applied) for proxy in self._shards)  # type: ignore[attr-defined]
        return applied / total

    def checkpoint(self) -> None:
        """Store every worker's manifest as its durable recovery baseline."""
        self._require_recovery()
        for proxy in self._shards:
            if not proxy.alive():  # type: ignore[attr-defined]
                raise WorkerCrashError(
                    f"cannot checkpoint: worker {proxy.label!r} is down"  # type: ignore[attr-defined]
                )
            digest = proxy.applied.digest()  # type: ignore[attr-defined]
            proxy.checkpoint_manifest = dict(proxy.snapshot_items())  # type: ignore[attr-defined]
            proxy.checkpoint_digest = digest  # type: ignore[attr-defined]

    def heal_workers(self) -> List[int]:
        """Respawn every dead worker and gossip-backfill its journal gap.

        Each dead shard's replacement restores the last checkpoint
        manifest, then receives — in ``(origin, seq)`` order — exactly the
        journal entries the checkpoint digest does not cover (the
        anti-entropy exchange of :mod:`repro.simulation.repair`, with the
        parent's journal as the up-to-date peer).  Returns the healed
        shard indices; afterwards :attr:`effective_delivery_ratio` is 1.0
        and scores are bit-identical to a run that never crashed.
        """
        self._require_recovery()
        self._poll_liveness()
        healed: List[int] = []
        shards = list(self._shards)
        for index, proxy in enumerate(shards):
            if not proxy.dead:  # type: ignore[attr-defined]
                continue
            shards[index] = self._respawn_from(proxy)  # type: ignore[arg-type]
            healed.append(index)
        if healed:
            self._shards = tuple(shards)
            self._writes += 1  # replayed evidence invalidates cached references
            self._healed_total += len(healed)
            self._reap()
        return healed

    def _respawn_from(self, proxy: WorkerShardProxy) -> WorkerShardProxy:
        replacement = self._spawn(proxy.label, dict(proxy.spawn_params))
        if self.telemetry.enabled:
            replacement.bind_telemetry(self.telemetry)
        self._proxy_registry.append(replacement)
        if proxy.restrict_filter is not None:
            replacement.restrict_rows(proxy.restrict_filter)
        if proxy.checkpoint_manifest is not None:
            replacement.restore(proxy.checkpoint_manifest)
        replacement.journal = proxy.journal
        replacement.seq = proxy.seq
        replacement.applied = _tracker_from_digest(proxy.checkpoint_digest)
        replacement.checkpoint_manifest = proxy.checkpoint_manifest
        replacement.checkpoint_digest = proxy.checkpoint_digest
        assert proxy.journal is not None
        for entry in proxy.journal.entries_missing_from(
            {proxy.label: proxy.checkpoint_digest}
        ):
            replacement.replay(entry)
        return replacement
