"""Accuracy metrics for trust estimates.

The trust-learning experiments (Figure 2, Ablation C) need to quantify how
well a trust model recovers the peers' true honesty probabilities and how
well its accept/reject decisions separate honest from dishonest peers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.exceptions import AnalysisError

__all__ = [
    "mean_absolute_error",
    "root_mean_squared_error",
    "brier_score",
    "ClassificationReport",
    "classification_report",
]


def _paired(
    estimates: Mapping[str, float], truths: Mapping[str, float]
) -> Sequence[Tuple[float, float]]:
    common = sorted(set(estimates) & set(truths))
    if not common:
        raise AnalysisError("estimates and truths share no subjects")
    return [(estimates[key], truths[key]) for key in common]


def mean_absolute_error(
    estimates: Mapping[str, float], truths: Mapping[str, float]
) -> float:
    """Mean absolute error between estimated and true honesty probabilities."""
    pairs = _paired(estimates, truths)
    return sum(abs(estimate - truth) for estimate, truth in pairs) / len(pairs)


def root_mean_squared_error(
    estimates: Mapping[str, float], truths: Mapping[str, float]
) -> float:
    """Root mean squared error between estimates and truths."""
    pairs = _paired(estimates, truths)
    return math.sqrt(
        sum((estimate - truth) ** 2 for estimate, truth in pairs) / len(pairs)
    )


def brier_score(
    estimates: Mapping[str, float], outcomes: Mapping[str, bool]
) -> float:
    """Brier score of trust estimates against realised honest/dishonest outcomes."""
    common = sorted(set(estimates) & set(outcomes))
    if not common:
        raise AnalysisError("estimates and outcomes share no subjects")
    return sum(
        (estimates[key] - (1.0 if outcomes[key] else 0.0)) ** 2 for key in common
    ) / len(common)


@dataclass(frozen=True)
class ClassificationReport:
    """Confusion counts of a trust-threshold decision rule.

    "Positive" means *accepted as trustworthy*.  A false accept therefore is
    a dishonest peer that was trusted (the costly error for the exposed
    party), and a false reject is an honest peer that was turned away
    (opportunity cost).
    """

    true_accepts: int
    false_accepts: int
    true_rejects: int
    false_rejects: int

    @property
    def total(self) -> int:
        return (
            self.true_accepts
            + self.false_accepts
            + self.true_rejects
            + self.false_rejects
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_accepts + self.true_rejects) / self.total

    @property
    def false_accept_rate(self) -> float:
        dishonest = self.false_accepts + self.true_rejects
        if dishonest == 0:
            return 0.0
        return self.false_accepts / dishonest

    @property
    def false_reject_rate(self) -> float:
        honest = self.true_accepts + self.false_rejects
        if honest == 0:
            return 0.0
        return self.false_rejects / honest

    @property
    def precision(self) -> float:
        accepted = self.true_accepts + self.false_accepts
        if accepted == 0:
            return 0.0
        return self.true_accepts / accepted

    @property
    def recall(self) -> float:
        honest = self.true_accepts + self.false_rejects
        if honest == 0:
            return 0.0
        return self.true_accepts / honest


def classification_report(
    estimates: Mapping[str, float],
    honest_labels: Mapping[str, bool],
    threshold: float = 0.5,
) -> ClassificationReport:
    """Evaluate the decision "accept iff estimated trust >= threshold"."""
    if not 0.0 <= threshold <= 1.0:
        raise AnalysisError(f"threshold must lie in [0, 1], got {threshold}")
    common = sorted(set(estimates) & set(honest_labels))
    if not common:
        raise AnalysisError("estimates and labels share no subjects")
    true_accepts = false_accepts = true_rejects = false_rejects = 0
    for key in common:
        accepted = estimates[key] >= threshold
        honest = honest_labels[key]
        if accepted and honest:
            true_accepts += 1
        elif accepted and not honest:
            false_accepts += 1
        elif not accepted and not honest:
            true_rejects += 1
        else:
            false_rejects += 1
    return ClassificationReport(
        true_accepts=true_accepts,
        false_accepts=false_accepts,
        true_rejects=true_rejects,
        false_rejects=false_rejects,
    )
