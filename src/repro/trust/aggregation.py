"""Aggregation of direct and second-hand trust evidence.

First-hand observations are scarce in open communities: most prospective
partners are strangers.  Reputation reporting therefore supplies second-hand
evidence (witness reports), which must be *discounted* by the trust placed in
the witnesses themselves before it is merged with first-hand beliefs.

Two data paths are provided:

* the scalar reference — :func:`combine_beta_evidence` merges
  :class:`WitnessReport` objects one by one via :meth:`BetaBelief.merged`;
* the batched path — a *witness-belief matrix* of shape
  ``(n_witnesses, n_subjects, 2)`` holding each witness's ``(alpha, beta)``
  posterior about each subject, combined with a per-witness discount vector
  in one numpy pass (:func:`combine_beta_evidence_matrix`).  The trust
  backends' ``aggregate_witness_reports`` methods build on this core; the
  scalar function remains the behavioural reference the batched path is
  property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrustModelError
from repro.trust.beta import BetaBelief

__all__ = [
    "WitnessReport",
    "combine_beta_evidence",
    "combine_beta_evidence_matrix",
    "stack_witness_beliefs",
    "reports_to_matrix",
    "validate_witness_matrix",
    "weighted_mean_trust",
    "pessimistic_trust",
]


@dataclass(frozen=True)
class WitnessReport:
    """A witness's belief about a subject, with the trust put in the witness."""

    witness_id: str
    belief: BetaBelief
    witness_trust: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.witness_trust <= 1.0:
            raise TrustModelError(
                f"witness_trust must lie in [0, 1], got {self.witness_trust}"
            )


def combine_beta_evidence(
    direct: BetaBelief, reports: Iterable[WitnessReport]
) -> BetaBelief:
    """Merge witness reports into a first-hand belief with discounting.

    Each report's evidence counts (its pseudo-counts beyond the uniform
    prior) are scaled by the trust put in the witness and added to the direct
    belief.  A witness that is not trusted at all therefore contributes
    nothing; a fully trusted witness contributes as if its observations were
    first-hand.
    """
    combined = direct
    for report in reports:
        combined = combined.merged(report.belief, discount=report.witness_trust)
    return combined


def validate_witness_matrix(
    subject_count: int,
    witness_belief_matrix: np.ndarray,
    discount_vector: np.ndarray,
    positive: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise a ``(W, S, 2)`` belief matrix + discounts.

    Returns float64 views/copies of both arrays.  ``W`` (the number of
    witnesses) may be zero — an empty report set is a valid query that
    degrades to direct evidence only.  ``positive`` is the beta-family rule
    (``(alpha, beta)`` parameters must be strictly positive); complaint-count
    reports pass ``positive=False`` and only need to be non-negative.
    """
    matrix = np.asarray(witness_belief_matrix, dtype=np.float64)
    discounts = np.asarray(discount_vector, dtype=np.float64)
    if matrix.ndim != 3 or matrix.shape[2] != 2:
        raise TrustModelError(
            f"witness_belief_matrix must have shape (W, S, 2), got {matrix.shape}"
        )
    if matrix.shape[1] != subject_count:
        raise TrustModelError(
            f"witness_belief_matrix covers {matrix.shape[1]} subjects, "
            f"query names {subject_count}"
        )
    if discounts.ndim != 1 or discounts.shape[0] != matrix.shape[0]:
        raise TrustModelError(
            f"discount_vector must have shape ({matrix.shape[0]},), "
            f"got {discounts.shape}"
        )
    if matrix.size and positive and (matrix <= 0).any():
        raise TrustModelError("witness beliefs must have positive (alpha, beta)")
    if matrix.size and not positive and (matrix < 0).any():
        raise TrustModelError("witness reports must be non-negative")
    if discounts.size and ((discounts < 0) | (discounts > 1)).any():
        raise TrustModelError("discounts must lie in [0, 1]")
    return matrix, discounts


def combine_beta_evidence_matrix(
    direct_alpha: np.ndarray,
    direct_beta: np.ndarray,
    witness_belief_matrix: np.ndarray,
    discount_vector: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized core of :func:`combine_beta_evidence` over many subjects.

    ``direct_alpha`` / ``direct_beta`` are the requester's own posterior
    parameters per subject (shape ``(S,)``).  Each witness's evidence counts
    beyond the uniform prior (``alpha - 1``, ``beta - 1``, clipped at zero —
    exactly what :meth:`BetaBelief.merged` discounts) are scaled by that
    witness's discount and summed into the direct counts.  Returns the
    combined ``(alpha, beta)`` vectors; for every subject the result is
    bit-identical in semantics to folding the same reports through
    :func:`combine_beta_evidence`.
    """
    direct_alpha = np.asarray(direct_alpha, dtype=np.float64)
    direct_beta = np.asarray(direct_beta, dtype=np.float64)
    matrix, discounts = validate_witness_matrix(
        direct_alpha.shape[0], witness_belief_matrix, discount_vector
    )
    if matrix.shape[0] == 0:
        return direct_alpha.copy(), direct_beta.copy()
    evidence = np.clip(matrix - 1.0, 0.0, None)
    contribution = np.einsum("w,wsk->sk", discounts, evidence)
    return direct_alpha + contribution[:, 0], direct_beta + contribution[:, 1]


def stack_witness_beliefs(
    witness_beliefs: Sequence[Sequence[Optional[BetaBelief]]],
) -> np.ndarray:
    """Stack per-witness belief rows into a ``(W, S, 2)`` matrix.

    ``witness_beliefs[w][s]`` is witness ``w``'s belief about subject ``s``;
    ``None`` marks "witness has nothing to report" and becomes the uniform
    prior ``(1, 1)``, which carries zero evidence and therefore contributes
    nothing after discounting — the matrix equivalent of the scalar path
    simply skipping that witness.
    """
    if not witness_beliefs:
        return np.zeros((0, 0, 2))
    subject_count = len(witness_beliefs[0])
    matrix = np.ones((len(witness_beliefs), subject_count, 2))
    for row, beliefs in enumerate(witness_beliefs):
        if len(beliefs) != subject_count:
            raise TrustModelError("ragged witness belief rows")
        for column, belief in enumerate(beliefs):
            if belief is not None:
                matrix[row, column, 0] = belief.alpha
                matrix[row, column, 1] = belief.beta
    return matrix


def reports_to_matrix(
    reports: Sequence[WitnessReport],
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert single-subject :class:`WitnessReport` objects to matrix form.

    Returns ``(matrix, discounts)`` with the matrix shaped ``(W, 1, 2)`` —
    the bridge from the scalar collection API to the batched aggregation
    path.
    """
    matrix = np.ones((len(reports), 1, 2))
    discounts = np.zeros(len(reports))
    for row, report in enumerate(reports):
        matrix[row, 0, 0] = report.belief.alpha
        matrix[row, 0, 1] = report.belief.beta
        discounts[row] = report.witness_trust
    return matrix, discounts


def weighted_mean_trust(
    estimates: Sequence[Tuple[float, float]]
) -> float:
    """Weighted mean of ``(trust_estimate, weight)`` pairs.

    Raises when no estimate carries positive weight.
    """
    total_weight = 0.0
    weighted_sum = 0.0
    for estimate, weight in estimates:
        if not 0.0 <= estimate <= 1.0:
            raise TrustModelError(f"trust estimate must lie in [0, 1], got {estimate}")
        if weight < 0:
            raise TrustModelError(f"weights must be non-negative, got {weight}")
        total_weight += weight
        weighted_sum += estimate * weight
    if total_weight <= 0:
        raise TrustModelError("at least one estimate with positive weight is required")
    return weighted_sum / total_weight


def pessimistic_trust(
    direct: Optional[float], indirect: Optional[float]
) -> float:
    """Combine direct and indirect trust pessimistically (minimum).

    A conservative rule used by the safe-only baselines: trust a partner only
    as much as the most pessimistic available source suggests.  When neither
    source is available the neutral value ``0.5`` is returned.
    """
    candidates = [value for value in (direct, indirect) if value is not None]
    for value in candidates:
        if not 0.0 <= value <= 1.0:
            raise TrustModelError(f"trust values must lie in [0, 1], got {value}")
    if not candidates:
        return 0.5
    return min(candidates)
