"""Aggregation of direct and second-hand trust evidence.

First-hand observations are scarce in open communities: most prospective
partners are strangers.  Reputation reporting therefore supplies second-hand
evidence (witness reports), which must be *discounted* by the trust placed in
the witnesses themselves before it is merged with first-hand beliefs.

Two data paths are provided:

* the scalar reference — :func:`combine_beta_evidence` merges
  :class:`WitnessReport` objects one by one via :meth:`BetaBelief.merged`;
* the batched path — a *witness-belief matrix* of shape
  ``(n_witnesses, n_subjects, 2)`` holding each witness's ``(alpha, beta)``
  posterior about each subject, combined with a per-witness discount vector
  in one numpy pass (:func:`combine_beta_evidence_matrix`).  The trust
  backends' ``aggregate_witness_reports`` methods build on this core; the
  scalar function remains the behavioural reference the batched path is
  property-tested against.

At community scale most witnesses have nothing to report about most
subjects, so the dense ``(W, S, 2)`` matrix is almost entirely the neutral
"no report" entry.  :class:`SparseWitnessMatrix` is the CSR-style
counterpart (per-witness row pointers + subject columns + ``(value, value)``
data) that stores only actual reports; every aggregation entry point
(:func:`validate_witness_matrix`, :func:`combine_beta_evidence_matrix`,
:func:`witness_report_sums` and the backends built on them) accepts either
representation.  Sparse aggregation sums per-report contributions with
``np.add.at`` instead of a dense ``einsum``, so results agree with the dense
path to floating-point summation order (documented tolerance, not
bit-identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TrustModelError
from repro.trust.beta import BetaBelief

__all__ = [
    "WitnessReport",
    "SparseWitnessMatrix",
    "WitnessMatrixLike",
    "combine_beta_evidence",
    "combine_beta_evidence_matrix",
    "stack_witness_beliefs",
    "stack_witness_beliefs_sparse",
    "reports_to_matrix",
    "validate_witness_matrix",
    "witness_report_sums",
    "weighted_mean_trust",
    "pessimistic_trust",
]


@dataclass(frozen=True)
class WitnessReport:
    """A witness's belief about a subject, with the trust put in the witness."""

    witness_id: str
    belief: BetaBelief
    witness_trust: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.witness_trust <= 1.0:
            raise TrustModelError(
                f"witness_trust must lie in [0, 1], got {self.witness_trust}"
            )


def combine_beta_evidence(
    direct: BetaBelief, reports: Iterable[WitnessReport]
) -> BetaBelief:
    """Merge witness reports into a first-hand belief with discounting.

    Each report's evidence counts (its pseudo-counts beyond the uniform
    prior) are scaled by the trust put in the witness and added to the direct
    belief.  A witness that is not trusted at all therefore contributes
    nothing; a fully trusted witness contributes as if its observations were
    first-hand.
    """
    combined = direct
    for report in reports:
        combined = combined.merged(report.belief, discount=report.witness_trust)
    return combined


@dataclass(frozen=True)
class SparseWitnessMatrix:
    """CSR-style witness-report matrix: only actual reports are stored.

    Witness ``w``'s reports live at ``cols[indptr[w]:indptr[w+1]]`` (subject
    positions) and ``data[indptr[w]:indptr[w+1]]`` (``(alpha, beta)`` pairs
    for the beta family, ``(received, filed)`` counts for the complaint
    scheme).  A (witness, subject) pair with no stored entry means "nothing
    to report": the uniform prior for beliefs, zero counts for complaints —
    either way it contributes nothing to aggregation, which is exactly why
    it need not be stored.  ``neutral`` records the dense fill value so
    :meth:`to_dense` round-trips.
    """

    witness_count: int
    subject_count: int
    indptr: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    neutral: Tuple[float, float] = (1.0, 1.0)

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        data = np.asarray(self.data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != 2:
            raise TrustModelError(
                f"sparse witness data must have shape (nnz, 2), got {data.shape}"
            )
        if indptr.ndim != 1 or indptr.shape[0] != self.witness_count + 1:
            raise TrustModelError(
                f"indptr must have shape (witness_count + 1,), got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != len(cols) or (np.diff(indptr) < 0).any():
            raise TrustModelError("indptr must be monotone from 0 to nnz")
        if len(cols) != len(data):
            raise TrustModelError("cols and data lengths disagree")
        if cols.size and (
            (cols < 0).any() or (cols >= self.subject_count).any()
        ):
            raise TrustModelError("sparse witness columns out of subject range")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "data", data)

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Dense-equivalent shape, so shape-based call sites work unchanged."""
        return (self.witness_count, self.subject_count, 2)

    @property
    def nnz(self) -> int:
        return len(self.cols)

    def row_indices(self) -> np.ndarray:
        """Witness index of every stored entry (the CSR row expansion)."""
        return np.repeat(
            np.arange(self.witness_count, dtype=np.int64), np.diff(self.indptr)
        )

    @classmethod
    def from_entries(
        cls,
        witness_count: int,
        subject_count: int,
        witness_rows: np.ndarray,
        subject_cols: np.ndarray,
        data: np.ndarray,
        neutral: Tuple[float, float] = (1.0, 1.0),
    ) -> "SparseWitnessMatrix":
        """Build from COO-style triplets (stable-sorted into CSR rows)."""
        rows = np.asarray(witness_rows, dtype=np.int64)
        cols = np.asarray(subject_cols, dtype=np.int64)
        values = np.asarray(data, dtype=np.float64)
        if rows.size and ((rows < 0).any() or (rows >= witness_count).any()):
            raise TrustModelError("sparse witness rows out of witness range")
        order = np.argsort(rows, kind="stable")
        counts = np.bincount(rows, minlength=witness_count)
        indptr = np.zeros(witness_count + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            witness_count=witness_count,
            subject_count=subject_count,
            indptr=indptr,
            cols=cols[order],
            data=values[order],
            neutral=neutral,
        )

    @classmethod
    def from_dense(
        cls, matrix: np.ndarray, neutral: Tuple[float, float] = (1.0, 1.0)
    ) -> "SparseWitnessMatrix":
        """Sparsify a dense ``(W, S, 2)`` matrix (entries equal to ``neutral``
        are dropped)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 3 or matrix.shape[2] != 2:
            raise TrustModelError(
                f"witness matrix must have shape (W, S, 2), got {matrix.shape}"
            )
        mask = (matrix[:, :, 0] != neutral[0]) | (matrix[:, :, 1] != neutral[1])
        rows, cols = np.nonzero(mask)
        counts = np.bincount(rows, minlength=matrix.shape[0])
        indptr = np.zeros(matrix.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            witness_count=matrix.shape[0],
            subject_count=matrix.shape[1],
            indptr=indptr,
            cols=cols.astype(np.int64),
            data=matrix[rows, cols],
            neutral=neutral,
        )

    def to_dense(self) -> np.ndarray:
        """Materialise the dense ``(W, S, 2)`` equivalent."""
        matrix = np.empty((self.witness_count, self.subject_count, 2))
        matrix[:, :, 0] = self.neutral[0]
        matrix[:, :, 1] = self.neutral[1]
        if self.nnz:
            matrix[self.row_indices(), self.cols] = self.data
        return matrix

    def select_columns(self, positions: np.ndarray) -> "SparseWitnessMatrix":
        """Restrict to ``positions`` (renumbered 0..len-1) — the sparse
        counterpart of ``matrix[:, positions, :]`` used by shard partitioning."""
        positions = np.asarray(positions, dtype=np.int64)
        lookup = np.full(self.subject_count, -1, dtype=np.int64)
        lookup[positions] = np.arange(len(positions), dtype=np.int64)
        new_cols = lookup[self.cols] if self.nnz else self.cols
        keep = new_cols >= 0
        kept_rows = self.row_indices()[keep]
        counts = np.bincount(kept_rows, minlength=self.witness_count)
        indptr = np.zeros(self.witness_count + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return SparseWitnessMatrix(
            witness_count=self.witness_count,
            subject_count=len(positions),
            indptr=indptr,
            cols=new_cols[keep],
            data=self.data[keep],
            neutral=self.neutral,
        )


#: Either witness-report representation, accepted by every aggregation entry
#: point (and the backends' ``aggregate_witness_reports``).
WitnessMatrixLike = Union[np.ndarray, SparseWitnessMatrix]


def validate_witness_matrix(
    subject_count: int,
    witness_belief_matrix: "WitnessMatrixLike",
    discount_vector: np.ndarray,
    positive: bool = True,
) -> Tuple["WitnessMatrixLike", np.ndarray]:
    """Validate and canonicalise a ``(W, S, 2)`` belief matrix + discounts.

    Returns float64 views/copies of both arrays.  ``W`` (the number of
    witnesses) may be zero — an empty report set is a valid query that
    degrades to direct evidence only.  ``positive`` is the beta-family rule
    (``(alpha, beta)`` parameters must be strictly positive); complaint-count
    reports pass ``positive=False`` and only need to be non-negative.

    A :class:`SparseWitnessMatrix` passes through structurally unchanged
    (only its stored entries are range-checked — absent entries are neutral
    by construction).
    """
    discounts = np.asarray(discount_vector, dtype=np.float64)
    if isinstance(witness_belief_matrix, SparseWitnessMatrix):
        sparse = witness_belief_matrix
        if sparse.subject_count != subject_count:
            raise TrustModelError(
                f"witness matrix covers {sparse.subject_count} subjects, "
                f"query names {subject_count}"
            )
        if discounts.ndim != 1 or discounts.shape[0] != sparse.witness_count:
            raise TrustModelError(
                f"discount_vector must have shape ({sparse.witness_count},), "
                f"got {discounts.shape}"
            )
        if sparse.nnz and positive and (sparse.data <= 0).any():
            raise TrustModelError(
                "witness beliefs must have positive (alpha, beta)"
            )
        if sparse.nnz and not positive and (sparse.data < 0).any():
            raise TrustModelError("witness reports must be non-negative")
        if discounts.size and ((discounts < 0) | (discounts > 1)).any():
            raise TrustModelError("discounts must lie in [0, 1]")
        return sparse, discounts
    matrix = np.asarray(witness_belief_matrix, dtype=np.float64)
    if matrix.ndim != 3 or matrix.shape[2] != 2:
        raise TrustModelError(
            f"witness_belief_matrix must have shape (W, S, 2), got {matrix.shape}"
        )
    if matrix.shape[1] != subject_count:
        raise TrustModelError(
            f"witness_belief_matrix covers {matrix.shape[1]} subjects, "
            f"query names {subject_count}"
        )
    if discounts.ndim != 1 or discounts.shape[0] != matrix.shape[0]:
        raise TrustModelError(
            f"discount_vector must have shape ({matrix.shape[0]},), "
            f"got {discounts.shape}"
        )
    if matrix.size and positive and (matrix <= 0).any():
        raise TrustModelError("witness beliefs must have positive (alpha, beta)")
    if matrix.size and not positive and (matrix < 0).any():
        raise TrustModelError("witness reports must be non-negative")
    if discounts.size and ((discounts < 0) | (discounts > 1)).any():
        raise TrustModelError("discounts must lie in [0, 1]")
    return matrix, discounts


def combine_beta_evidence_matrix(
    direct_alpha: np.ndarray,
    direct_beta: np.ndarray,
    witness_belief_matrix: np.ndarray,
    discount_vector: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized core of :func:`combine_beta_evidence` over many subjects.

    ``direct_alpha`` / ``direct_beta`` are the requester's own posterior
    parameters per subject (shape ``(S,)``).  Each witness's evidence counts
    beyond the uniform prior (``alpha - 1``, ``beta - 1``, clipped at zero —
    exactly what :meth:`BetaBelief.merged` discounts) are scaled by that
    witness's discount and summed into the direct counts.  Returns the
    combined ``(alpha, beta)`` vectors; for every subject the result is
    bit-identical in semantics to folding the same reports through
    :func:`combine_beta_evidence`.
    """
    direct_alpha = np.asarray(direct_alpha, dtype=np.float64)
    direct_beta = np.asarray(direct_beta, dtype=np.float64)
    matrix, discounts = validate_witness_matrix(
        direct_alpha.shape[0], witness_belief_matrix, discount_vector
    )
    if matrix.shape[0] == 0:
        return direct_alpha.copy(), direct_beta.copy()
    contribution = witness_report_sums(matrix, discounts, evidence=True)
    return direct_alpha + contribution[:, 0], direct_beta + contribution[:, 1]


def witness_report_sums(
    matrix: "WitnessMatrixLike", discounts: np.ndarray, evidence: bool = False
) -> np.ndarray:
    """Discount-weighted per-subject report sums, shape ``(S, 2)``.

    ``evidence=True`` first subtracts the uniform prior from each report
    (``clip(x - 1, 0, ...)`` — the beta-family evidence rule); ``False``
    sums raw report values (the complaint-count rule).  Dense matrices use
    the historical ``einsum`` (bit-identical to the pre-sparse path); sparse
    matrices accumulate per stored report with ``np.add.at``, which agrees
    with the dense sum to floating-point summation order.
    """
    if isinstance(matrix, SparseWitnessMatrix):
        values = matrix.data
        if evidence:
            values = np.clip(values - 1.0, 0.0, None)
        sums = np.zeros((matrix.subject_count, 2))
        if matrix.nnz:
            weights = np.repeat(discounts, np.diff(matrix.indptr))
            np.add.at(sums, matrix.cols, weights[:, None] * values)
        return sums
    values = np.clip(matrix - 1.0, 0.0, None) if evidence else matrix
    return np.einsum("w,wsk->sk", discounts, values)


def stack_witness_beliefs(
    witness_beliefs: Sequence[Sequence[Optional[BetaBelief]]],
) -> np.ndarray:
    """Stack per-witness belief rows into a ``(W, S, 2)`` matrix.

    ``witness_beliefs[w][s]`` is witness ``w``'s belief about subject ``s``;
    ``None`` marks "witness has nothing to report" and becomes the uniform
    prior ``(1, 1)``, which carries zero evidence and therefore contributes
    nothing after discounting — the matrix equivalent of the scalar path
    simply skipping that witness.
    """
    if not witness_beliefs:
        return np.zeros((0, 0, 2))
    subject_count = len(witness_beliefs[0])
    matrix = np.ones((len(witness_beliefs), subject_count, 2))
    for row, beliefs in enumerate(witness_beliefs):
        if len(beliefs) != subject_count:
            raise TrustModelError("ragged witness belief rows")
        for column, belief in enumerate(beliefs):
            if belief is not None:
                matrix[row, column, 0] = belief.alpha
                matrix[row, column, 1] = belief.beta
    return matrix


def stack_witness_beliefs_sparse(
    witness_beliefs: Sequence[Sequence[Optional[BetaBelief]]],
) -> SparseWitnessMatrix:
    """Sparse counterpart of :func:`stack_witness_beliefs`.

    Only non-``None`` beliefs are stored; a ``None`` ("nothing to report")
    is the implicit neutral ``(1, 1)`` entry, so
    ``stack_witness_beliefs_sparse(rows).to_dense()`` equals
    ``stack_witness_beliefs(rows)``.
    """
    witness_count = len(witness_beliefs)
    subject_count = len(witness_beliefs[0]) if witness_beliefs else 0
    cols: list = []
    data: list = []
    indptr = np.zeros(witness_count + 1, dtype=np.int64)
    for row, beliefs in enumerate(witness_beliefs):
        if len(beliefs) != subject_count:
            raise TrustModelError("ragged witness belief rows")
        for column, belief in enumerate(beliefs):
            if belief is not None:
                cols.append(column)
                data.append((belief.alpha, belief.beta))
        indptr[row + 1] = len(cols)
    return SparseWitnessMatrix(
        witness_count=witness_count,
        subject_count=subject_count,
        indptr=indptr,
        cols=np.asarray(cols, dtype=np.int64),
        data=np.asarray(data, dtype=np.float64).reshape(len(data), 2),
    )


def reports_to_matrix(
    reports: Sequence[WitnessReport],
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert single-subject :class:`WitnessReport` objects to matrix form.

    Returns ``(matrix, discounts)`` with the matrix shaped ``(W, 1, 2)`` —
    the bridge from the scalar collection API to the batched aggregation
    path.
    """
    matrix = np.ones((len(reports), 1, 2))
    discounts = np.zeros(len(reports))
    for row, report in enumerate(reports):
        matrix[row, 0, 0] = report.belief.alpha
        matrix[row, 0, 1] = report.belief.beta
        discounts[row] = report.witness_trust
    return matrix, discounts


def weighted_mean_trust(
    estimates: Sequence[Tuple[float, float]]
) -> float:
    """Weighted mean of ``(trust_estimate, weight)`` pairs.

    Raises when no estimate carries positive weight.
    """
    total_weight = 0.0
    weighted_sum = 0.0
    for estimate, weight in estimates:
        if not 0.0 <= estimate <= 1.0:
            raise TrustModelError(f"trust estimate must lie in [0, 1], got {estimate}")
        if weight < 0:
            raise TrustModelError(f"weights must be non-negative, got {weight}")
        total_weight += weight
        weighted_sum += estimate * weight
    if total_weight <= 0:
        raise TrustModelError("at least one estimate with positive weight is required")
    return weighted_sum / total_weight


def pessimistic_trust(
    direct: Optional[float], indirect: Optional[float]
) -> float:
    """Combine direct and indirect trust pessimistically (minimum).

    A conservative rule used by the safe-only baselines: trust a partner only
    as much as the most pessimistic available source suggests.  When neither
    source is available the neutral value ``0.5`` is returned.
    """
    candidates = [value for value in (direct, indirect) if value is not None]
    for value in candidates:
        if not 0.0 <= value <= 1.0:
            raise TrustModelError(f"trust values must lie in [0, 1], got {value}")
    if not candidates:
        return 0.5
    return min(candidates)
