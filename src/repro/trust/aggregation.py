"""Aggregation of direct and second-hand trust evidence.

First-hand observations are scarce in open communities: most prospective
partners are strangers.  Reputation reporting therefore supplies second-hand
evidence (witness reports), which must be *discounted* by the trust placed in
the witnesses themselves before it is merged with first-hand beliefs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.exceptions import TrustModelError
from repro.trust.beta import BetaBelief

__all__ = [
    "WitnessReport",
    "combine_beta_evidence",
    "weighted_mean_trust",
    "pessimistic_trust",
]


@dataclass(frozen=True)
class WitnessReport:
    """A witness's belief about a subject, with the trust put in the witness."""

    witness_id: str
    belief: BetaBelief
    witness_trust: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.witness_trust <= 1.0:
            raise TrustModelError(
                f"witness_trust must lie in [0, 1], got {self.witness_trust}"
            )


def combine_beta_evidence(
    direct: BetaBelief, reports: Iterable[WitnessReport]
) -> BetaBelief:
    """Merge witness reports into a first-hand belief with discounting.

    Each report's evidence counts (its pseudo-counts beyond the uniform
    prior) are scaled by the trust put in the witness and added to the direct
    belief.  A witness that is not trusted at all therefore contributes
    nothing; a fully trusted witness contributes as if its observations were
    first-hand.
    """
    combined = direct
    for report in reports:
        combined = combined.merged(report.belief, discount=report.witness_trust)
    return combined


def weighted_mean_trust(
    estimates: Sequence[Tuple[float, float]]
) -> float:
    """Weighted mean of ``(trust_estimate, weight)`` pairs.

    Raises when no estimate carries positive weight.
    """
    total_weight = 0.0
    weighted_sum = 0.0
    for estimate, weight in estimates:
        if not 0.0 <= estimate <= 1.0:
            raise TrustModelError(f"trust estimate must lie in [0, 1], got {estimate}")
        if weight < 0:
            raise TrustModelError(f"weights must be non-negative, got {weight}")
        total_weight += weight
        weighted_sum += estimate * weight
    if total_weight <= 0:
        raise TrustModelError("at least one estimate with positive weight is required")
    return weighted_sum / total_weight


def pessimistic_trust(
    direct: Optional[float], indirect: Optional[float]
) -> float:
    """Combine direct and indirect trust pessimistically (minimum).

    A conservative rule used by the safe-only baselines: trust a partner only
    as much as the most pessimistic available source suggests.  When neither
    source is available the neutral value ``0.5`` is returned.
    """
    candidates = [value for value in (direct, indirect) if value is not None]
    for value in candidates:
        if not 0.0 <= value <= 1.0:
            raise TrustModelError(f"trust values must lie in [0, 1], got {value}")
    if not candidates:
        return 0.5
    return min(candidates)
