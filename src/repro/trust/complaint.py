"""Complaint-based trust model (Aberer & Despotovic, CIKM 2001).

The paper cites this model as "a practical approach that can be used in P2P
environments".  Its evidence unit is purely negative: after a bad
interaction, a peer files a *complaint* about its partner.  Complaints are
stored decentrally (in this reproduction either in a local store or in the
P-Grid substrate of :mod:`repro.pgrid` via :mod:`repro.reputation`), and the
trust assessment of an agent ``q`` combines

* ``cr(q)`` — the number of complaints *about* ``q``, and
* ``cf(q)`` — the number of complaints *filed by* ``q``

into the decision metric ``T(q) = cr(q) * cf(q)``.  The product captures the
observation that malicious peers both cheat (attracting complaints) and file
false complaints to discredit honest peers.  An agent is judged trustworthy
when its metric does not exceed a configurable factor of the community's
median metric.

Because the original decision is binary but the trust-aware planner needs a
probability estimate, :meth:`ComplaintTrustModel.trust` additionally maps the
metric to ``[0, 1]`` with an exponential decay around the community
reference level (documented, pragmatic choice).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.exceptions import TrustModelError
from repro.trust.evidence import Complaint

__all__ = [
    "ComplaintCounts",
    "ComplaintAssessment",
    "ComplaintStore",
    "LocalComplaintStore",
    "aggregate_witness_reports",
    "ComplaintTrustModel",
]


@dataclass(frozen=True)
class ComplaintCounts:
    """Complaint statistics about one agent."""

    received: int
    filed: int

    def __post_init__(self) -> None:
        if self.received < 0 or self.filed < 0:
            raise TrustModelError("complaint counts must be non-negative")

    @property
    def metric(self) -> float:
        """The Aberer–Despotovic decision metric ``cr * cf``."""
        return float(self.received * self.filed)


@dataclass(frozen=True)
class ComplaintAssessment:
    """Result of assessing one agent with the complaint-based model."""

    agent_id: str
    counts: ComplaintCounts
    metric: float
    reference_metric: float
    trustworthy: bool
    trust: float


class ComplaintStore(Protocol):
    """Where complaints live; implemented locally and on top of P-Grid."""

    def file_complaint(self, complaint: Complaint) -> None:
        """Persist a complaint."""

    def complaints_about(self, agent_id: str) -> Sequence[Complaint]:
        """All complaints whose accused is ``agent_id``."""

    def complaints_by(self, agent_id: str) -> Sequence[Complaint]:
        """All complaints filed by ``agent_id``."""

    def known_agents(self) -> Sequence[str]:
        """Agents appearing in the store (as accused or complainant)."""


class LocalComplaintStore:
    """In-memory complaint store (single authority, no replication)."""

    def __init__(self) -> None:
        self._complaints: List[Complaint] = []

    def file_complaint(self, complaint: Complaint) -> None:
        self._complaints.append(complaint)

    def complaints_about(self, agent_id: str) -> Sequence[Complaint]:
        return [c for c in self._complaints if c.accused_id == agent_id]

    def complaints_by(self, agent_id: str) -> Sequence[Complaint]:
        return [c for c in self._complaints if c.complainant_id == agent_id]

    def known_agents(self) -> Sequence[str]:
        agents: List[str] = []
        for complaint in self._complaints:
            for agent_id in (complaint.accused_id, complaint.complainant_id):
                if agent_id not in agents:
                    agents.append(agent_id)
        return agents

    def all_complaints(self) -> Sequence[Complaint]:
        """Every stored complaint (lets caching layers recount in one pass)."""
        return tuple(self._complaints)

    def __len__(self) -> int:
        return len(self._complaints)


def aggregate_witness_reports(
    reports: Sequence[Tuple[int, int]]
) -> ComplaintCounts:
    """Combine complaint-count reports from several (possibly lying) witnesses.

    Uses the element-wise median, which tolerates a minority of forged
    reports — the robustness argument of the original P-Grid based scheme,
    where the same complaint data is replicated on several peers.
    """
    if not reports:
        raise TrustModelError("at least one witness report is required")
    received = int(round(statistics.median(report[0] for report in reports)))
    filed = int(round(statistics.median(report[1] for report in reports)))
    return ComplaintCounts(received=received, filed=filed)


class ComplaintTrustModel:
    """Trust assessment from complaint data.

    Parameters
    ----------
    store:
        Where complaints are read from and written to.
    tolerance_factor:
        An agent is judged *untrustworthy* when its metric exceeds
        ``tolerance_factor`` times the community reference (median) metric —
        and, when the community has no complaints at all, when it has any
        complaints against it.
    trust_scale:
        Scale of the exponential mapping from metric to the ``[0, 1]`` trust
        value handed to the decision module.  The default of ``3`` places an
        agent whose metric equals the community median at roughly ``0.72``
        and an agent at four times the median at roughly ``0.26``.
    """

    #: Supported decision metrics: the faithful Aberer–Despotovic product
    #: ``cr * cf``, the plain count of complaints received, or the balanced
    #: form ``cr * (1 + cf)`` that still penalises agents which cheat but
    #: never file complaints themselves.
    METRIC_MODES = ("product", "received", "balanced")

    def __init__(
        self,
        store: Optional[ComplaintStore] = None,
        tolerance_factor: float = 4.0,
        trust_scale: float = 3.0,
        metric_mode: str = "product",
    ):
        if tolerance_factor <= 0:
            raise TrustModelError(
                f"tolerance_factor must be > 0, got {tolerance_factor}"
            )
        if trust_scale <= 0:
            raise TrustModelError(f"trust_scale must be > 0, got {trust_scale}")
        if metric_mode not in self.METRIC_MODES:
            raise TrustModelError(
                f"metric_mode must be one of {self.METRIC_MODES}, got {metric_mode!r}"
            )
        self._store: ComplaintStore = store if store is not None else LocalComplaintStore()
        self._tolerance_factor = tolerance_factor
        self._trust_scale = trust_scale
        self._metric_mode = metric_mode

    @property
    def store(self) -> ComplaintStore:
        return self._store

    # ------------------------------------------------------------------
    # Evidence intake
    # ------------------------------------------------------------------
    def file_complaint(
        self, complainant_id: str, accused_id: str, timestamp: float = 0.0
    ) -> Complaint:
        """File (and persist) a complaint; returns the complaint object."""
        complaint = Complaint(
            complainant_id=complainant_id, accused_id=accused_id, timestamp=timestamp
        )
        self._store.file_complaint(complaint)
        return complaint

    # ------------------------------------------------------------------
    # Assessment
    # ------------------------------------------------------------------
    def counts(self, agent_id: str) -> ComplaintCounts:
        return ComplaintCounts(
            received=len(self._store.complaints_about(agent_id)),
            filed=len(self._store.complaints_by(agent_id)),
        )

    def metric(self, counts: ComplaintCounts) -> float:
        """Decision metric of the configured ``metric_mode`` for given counts."""
        if self._metric_mode == "product":
            return float(counts.received * counts.filed)
        if self._metric_mode == "received":
            return float(counts.received)
        return float(counts.received * (1 + counts.filed))

    def reference_metric(self) -> float:
        """The community's median complaint metric (0 when no data)."""
        agents = list(self._store.known_agents())
        if not agents:
            return 0.0
        metrics = [self.metric(self.counts(agent_id)) for agent_id in agents]  # repro: allow(PERF001) — scalar store adapter; ComplaintTrustBackend.metrics_for is the batched path
        return float(statistics.median(metrics))

    def assess(self, agent_id: str) -> ComplaintAssessment:
        """Full assessment of one agent (counts, decision and trust value)."""
        counts = self.counts(agent_id)
        reference = self.reference_metric()
        metric = self.metric(counts)
        trustworthy = self._decide(metric, reference)
        trust = self._metric_to_trust(metric, reference)
        return ComplaintAssessment(
            agent_id=agent_id,
            counts=counts,
            metric=metric,
            reference_metric=reference,
            trustworthy=trustworthy,
            trust=trust,
        )

    def _decide(self, metric: float, reference: float) -> bool:
        """Decision rule: compare against the community reference.

        When the community has no meaningful reference yet (median metric of
        zero) the rule falls back to an absolute threshold of
        ``tolerance_factor`` on the raw metric, so a single isolated
        complaint does not condemn an otherwise unknown agent.
        """
        if reference > 0:
            return metric <= self._tolerance_factor * reference
        return metric <= self._tolerance_factor

    def trust(self, agent_id: str) -> float:
        """Trust value in ``[0, 1]`` derived from the complaint metric."""
        return self.assess(agent_id).trust

    def is_trustworthy(self, agent_id: str) -> bool:
        return self.assess(agent_id).trustworthy

    def assess_from_reports(
        self, agent_id: str, reports: Sequence[Tuple[int, int]]
    ) -> ComplaintAssessment:
        """Assess an agent from witness reports instead of the local store.

        Used when complaint data is fetched from replicated remote storage
        (some replicas may misreport); the reports are combined with
        :func:`aggregate_witness_reports` before the usual decision rule is
        applied against the local community reference.
        """
        counts = aggregate_witness_reports(reports)
        reference = self.reference_metric()
        metric = self.metric(counts)
        trustworthy = self._decide(metric, reference)
        trust = self._metric_to_trust(metric, reference)
        return ComplaintAssessment(
            agent_id=agent_id,
            counts=counts,
            metric=metric,
            reference_metric=reference,
            trustworthy=trustworthy,
            trust=trust,
        )

    def trust_snapshot(self) -> Dict[str, float]:
        """Trust values for every agent known to the store."""
        return {
            agent_id: self.trust(agent_id) for agent_id in self._store.known_agents()
        }

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _metric_to_trust(self, metric: float, reference: float) -> float:
        scale = self._trust_scale * max(1.0, reference)
        return math.exp(-metric / scale)
