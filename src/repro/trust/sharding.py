"""Sharded trust backends: partition trust state by peer-id range.

The paper's premise is that reputation data in a P2P community is too large
and too decentralised to live on one node — that is why complaints are
stored in P-Grid in the first place.  This module brings the same idea to
the :class:`~repro.trust.backend.TrustBackend` layer: a
:class:`ShardedBackend` splits the peer-id space across ``N`` inner backends
of any registered kind (``beta``, ``complaint``, ``decay``, …) while
presenting the *same* ``TrustBackend`` interface, so every consumer — the
reputation manager, witness aggregation, matching, the community simulation
— stays unchanged and shard-agnostic.

Routing
-------
A :class:`ShardRouter` maps a subject-id to its home shard through a stable
32-bit key (``crc32`` of the UTF-8 id, so the assignment is identical
across processes and runs, unlike Python's seeded ``hash``):

``hash``
    ``key % N`` — uniform, order-free assignment.  Stateless, which also
    means a split would reassign (almost) every key: hash routers cannot
    rebalance; use ``ring`` for hash-style assignment that can.
``range``
    ``N`` contiguous key intervals held as an explicit boundary table,
    mirroring how P-Grid partitions its trie key space.  The default
    layout is equal-width intervals; splitting a shard halves its interval
    in place, so only the split shard's keys move.  The table always
    starts at key 0 and covers the whole 32-bit key space — an id minted
    long after construction (a flash-crowd arrival) lands in a real
    interval, never in an out-of-range fallback shard.
``ring``
    Consistent hashing: each shard owns one point on the 32-bit ring and
    the arc that ends at it.  Splitting a shard places the new shard's
    point at the midpoint of the hot shard's widest arc, so — exactly like
    ``range`` — only the split shard's keys move, while the initial
    assignment stays hash-like (arc widths are pseudo-random, not ordered
    intervals).

Live rebalancing
----------------
The P-Grid substrate re-partitions the key space as the population shifts:
a peer *splits its path* when its partition grows hot.  A
:class:`RebalancePolicy` gives :class:`ShardedBackend` the same move: the
backend keeps per-shard load counters (resident rows and routed evidence
units), and when a shard exceeds the policy's skew threshold (or its
absolute row capacity) it is split in place through the very same
``shard-NNNN/*`` snapshot manifest a re-sharding restore uses — snapshot
the hot shard, redistribute its rows (beta/decay) or re-file its complaint
log (complaint) onto two successor shards, and atomically swap the
router's key intervals (``range``) or ring points (``ring``).  Row values
are copied bit-for-bit and complaint logs are re-filed complaint-for-
complaint, so results stay bit-identical to an unsharded run before,
during and after every split — the sharding invariant survives churn.

Semantics
---------
* ``update_many`` / ``record_complaints`` scatter a batch by home shard
  (order-preserving within each shard, so results are bit-identical to the
  unsharded backend).  Complaint evidence touches *two* rows — the accused's
  received count and the complainant's filed count — so it is delivered to
  both peers' home shards; each shard counts only its own peer-id range
  (``ComplaintTrustBackend.restrict_rows``), so every home row sees all of
  its evidence and no shard holds half-counted foreign rows.
* ``scores_for`` / ``trust_decisions`` / ``aggregate_witness_reports``
  scatter the query (the witness-belief matrix splits column-wise) and
  gather per-shard answers back into caller order.  For the complaint
  family the community *median* reference is global state: the wrapper
  pools every shard's home-subject metrics, takes one global median, and
  hands it to each shard's explicit-reference scoring helpers — per-shard
  medians would silently change the decision rule.
* ``snapshot`` / ``restore`` produce a per-shard manifest: each shard
  serialises independently under a ``shard-NNNN/`` key prefix (the format a
  multi-worker deployment checkpoints in parallel), plus the router name
  *and its boundary state* needed to re-shard — a snapshot taken after
  live splits records the uneven layout, so its per-shard logs are
  interpreted correctly on restore.  Restoring into a *different* shard
  count or router layout redistributes per-subject rows — or re-files the
  complaint log — onto the new layout without score drift; restoring onto
  a single shard, or onto more shards than there are peers (some shards
  end up empty), both work.
"""

from __future__ import annotations

import itertools
import time
import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrustModelError
from repro.trust.aggregation import (
    SparseWitnessMatrix,
    validate_witness_matrix,
)
from repro.trust.backend import (
    ComplaintTrustBackend,
    TrustBackend,
    TrustObservation,
    create_backend,
)
from repro.trust.beta import BetaBelief
from repro.trust.evidence import Complaint

__all__ = [
    "ShardRouter",
    "HashShardRouter",
    "RangeShardRouter",
    "RingShardRouter",
    "ROUTER_NAMES",
    "create_router",
    "RebalancePolicy",
    "RebalanceEvent",
    "ShardSplitError",
    "ShardedBackend",
]


class ShardSplitError(TrustModelError):
    """A shard cannot be split (unsplittable router or exhausted key range).

    Raised *before* any router mutation, so catching it is always safe;
    any other error escaping a split indicates a real failure (and the
    backend rolls its router back before re-raising).
    """

_KEY_BITS = 32
_KEY_SPACE = 1 << _KEY_BITS

#: Router strategies selectable by name (CLI ``--shard-router``).
ROUTER_NAMES = ("hash", "range", "ring")


def shard_key(peer_id: str) -> int:
    """Stable 32-bit routing key for a peer id.

    ``crc32`` rather than Python's builtin ``hash``: the builtin is salted
    per process (``PYTHONHASHSEED``), which would scatter the same peer to
    different shards across runs and break snapshot re-sharding; crc32 is
    deterministic everywhere and runs at C speed on the routing hot path.
    """
    return zlib.crc32(peer_id.encode("utf-8"))


class ShardRouter:
    """Maps subject-ids to shard indices; strategies subclass :meth:`shard_of`."""

    #: Registry name of the routing strategy.
    name: str = "router"

    #: Whether :meth:`split` is supported (a prerequisite for rebalancing).
    supports_split: bool = False

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise TrustModelError(f"num_shards must be >= 1, got {num_shards}")
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def shard_of(self, peer_id: str) -> int:
        """Home shard index of ``peer_id`` in ``[0, num_shards)``."""
        raise NotImplementedError

    def split(self, hot_index: int) -> int:
        """Split shard ``hot_index``'s key range in place.

        Returns the index of the newly created shard (always the next free
        index, ``num_shards`` before the call).  Only the split shard's
        keys move: every other shard's assignment is untouched.  Routers
        without boundary state cannot split.
        """
        raise ShardSplitError(
            f"the {self.name!r} router cannot split shards; "
            "rebalancing needs a 'range' or 'ring' router"
        )

    def state(self) -> Optional[np.ndarray]:
        """Serialisable boundary state (``None`` for stateless routers)."""
        return None

    def same_layout(self, other: "ShardRouter") -> bool:
        """Whether ``other`` assigns every key exactly as this router does."""
        if self.name != other.name or self._num_shards != other.num_shards:
            return False
        mine, theirs = self.state(), other.state()
        if mine is None or theirs is None:
            return mine is None and theirs is None
        return mine.shape == theirs.shape and bool(np.array_equal(mine, theirs))

    def _check_hot_index(self, hot_index: int) -> None:
        if not 0 <= hot_index < self._num_shards:
            raise TrustModelError(
                f"shard index {hot_index} out of range [0, {self._num_shards})"
            )

    def describe(self) -> str:
        return f"{self.name}({self._num_shards})"


class HashShardRouter(ShardRouter):
    """Uniform assignment by routing key modulo the shard count."""

    name = "hash"

    def shard_of(self, peer_id: str) -> int:
        return shard_key(peer_id) % self._num_shards


def _validate_boundary_state(
    state: np.ndarray, num_shards: int, router_name: str
) -> Tuple[List[int], List[int]]:
    """Validate a ``(2, M)`` positions/owners table and return python lists."""
    table = np.asarray(state, dtype=np.int64)
    if table.ndim != 2 or table.shape[0] != 2 or table.shape[1] < 1:
        raise TrustModelError(
            f"{router_name} router state must be a (2, M>=1) array, "
            f"got shape {table.shape}"
        )
    positions = [int(value) for value in table[0]]
    owners = [int(value) for value in table[1]]
    if any(not 0 <= position < _KEY_SPACE for position in positions):
        raise TrustModelError(
            f"{router_name} router positions must lie in [0, 2^{_KEY_BITS})"
        )
    if any(low >= high for low, high in zip(positions, positions[1:])):
        raise TrustModelError(
            f"{router_name} router positions must be strictly increasing"
        )
    if set(owners) != set(range(num_shards)):
        raise TrustModelError(
            f"{router_name} router state must assign at least one key range "
            f"to every shard in [0, {num_shards})"
        )
    return positions, owners


class RangeShardRouter(ShardRouter):
    """Contiguous-interval assignment over an explicit boundary table.

    The default layout gives shard ``i`` the equal-width interval
    ``[ceil(i * 2^32 / N), ceil((i + 1) * 2^32 / N))`` — the P-Grid-style
    split of the key space into contiguous ranges.  The table always
    starts at key 0 and (implicitly) ends at ``2^32``, so *every* possible
    routing key falls inside a configured interval: ids first seen after
    construction route deterministically into a real home interval, and
    the assignment is stable across snapshot/restore because the table
    itself is the serialised router state.  A table whose first boundary
    is not 0 would silently send all low keys to whichever shard owns the
    last interval (an over-wide fallback), so it is rejected outright.

    :meth:`split` halves the hot shard's (widest) interval in place; the
    upper half moves to the new shard, nothing else changes.
    """

    name = "range"
    supports_split = True

    def __init__(self, num_shards: int, state: Optional[np.ndarray] = None):
        super().__init__(num_shards)
        if state is None:
            self._starts = [
                ((index << _KEY_BITS) + num_shards - 1) // num_shards
                for index in range(num_shards)
            ]
            self._owners = list(range(num_shards))
        else:
            starts, owners = _validate_boundary_state(state, num_shards, self.name)
            if starts[0] != 0:
                raise TrustModelError(
                    "range router intervals must start at key 0: keys below "
                    f"the first boundary ({starts[0]}) would fall outside "
                    "every configured interval"
                )
            self._starts, self._owners = starts, owners

    def shard_of(self, peer_id: str) -> int:
        return self._owners[bisect_right(self._starts, shard_key(peer_id)) - 1]

    def split(self, hot_index: int) -> int:
        self._check_hot_index(hot_index)
        best: Optional[Tuple[int, int]] = None  # (width, table position)
        for position, owner in enumerate(self._owners):
            if owner != hot_index:
                continue
            end = (
                self._starts[position + 1]
                if position + 1 < len(self._starts)
                else _KEY_SPACE
            )
            width = end - self._starts[position]
            if best is None or width > best[0]:
                best = (width, position)
        if best is None or best[0] < 2:
            raise ShardSplitError(
                f"shard {hot_index} owns no splittable key interval"
            )
        width, position = best
        midpoint = self._starts[position] + width // 2
        new_index = self._num_shards
        self._starts.insert(position + 1, midpoint)
        self._owners.insert(position + 1, new_index)
        self._num_shards += 1
        return new_index

    def state(self) -> np.ndarray:
        return np.array([self._starts, self._owners], dtype=np.int64)

    def describe(self) -> str:
        return f"{self.name}({self._num_shards}, {len(self._starts)} intervals)"


class RingShardRouter(ShardRouter):
    """Consistent hashing: shards own arcs of the 32-bit key ring.

    Each shard starts with one point (``crc32`` of its shard label) and
    owns the arc ending at that point, so the initial assignment is
    hash-like — arc widths are pseudo-random, unrelated to shard order —
    but, unlike the ``hash`` router's modulo, a split moves *only* the
    split shard's keys: the new shard's point lands at the midpoint of the
    hot shard's widest arc and takes the lower half of it.
    """

    name = "ring"
    supports_split = True

    def __init__(self, num_shards: int, state: Optional[np.ndarray] = None):
        super().__init__(num_shards)
        if state is None:
            placed: Dict[int, int] = {}
            for index in range(num_shards):
                position = shard_key(f"shard-{index:04d}")
                while position in placed:  # crc32 collision: probe forward
                    position = (position + 1) % _KEY_SPACE
                placed[position] = index
            ordered = sorted(placed)
            self._points = ordered
            self._owners = [placed[position] for position in ordered]
        else:
            self._points, self._owners = _validate_boundary_state(
                state, num_shards, self.name
            )

    def shard_of(self, peer_id: str) -> int:
        index = bisect_left(self._points, shard_key(peer_id))
        if index == len(self._points):
            index = 0  # wrap: keys past the last point belong to the first
        return self._owners[index]

    def split(self, hot_index: int) -> int:
        self._check_hot_index(hot_index)
        count = len(self._points)
        best: Optional[Tuple[int, int]] = None  # (arc length, predecessor)
        for position, owner in enumerate(self._owners):
            if owner != hot_index:
                continue
            if count == 1:
                predecessor, length = self._points[0], _KEY_SPACE
            else:
                predecessor = self._points[position - 1] if position else self._points[-1]
                length = (self._points[position] - predecessor) % _KEY_SPACE
            if best is None or length > best[0]:
                best = (length, predecessor)
        if best is None or best[0] < 2:
            raise ShardSplitError(f"shard {hot_index} owns no splittable ring arc")
        length, predecessor = best
        midpoint = (predecessor + length // 2) % _KEY_SPACE
        new_index = self._num_shards
        insert_at = bisect_left(self._points, midpoint)
        self._points.insert(insert_at, midpoint)
        self._owners.insert(insert_at, new_index)
        self._num_shards += 1
        return new_index

    def state(self) -> np.ndarray:
        return np.array([self._points, self._owners], dtype=np.int64)

    def describe(self) -> str:
        return f"{self.name}({self._num_shards}, {len(self._points)} points)"


_ROUTER_CLASSES = {
    cls.name: cls for cls in (HashShardRouter, RangeShardRouter, RingShardRouter)
}


def create_router(
    name: str, num_shards: int, state: Optional[np.ndarray] = None
) -> ShardRouter:
    """Instantiate a routing strategy by name (optionally from saved state)."""
    router_class = _ROUTER_CLASSES.get(name)
    if router_class is None:
        raise TrustModelError(
            f"unknown shard router {name!r}; registered: {ROUTER_NAMES}"
        )
    if state is None:
        return router_class(num_shards)
    if not router_class.supports_split:
        raise TrustModelError(f"the {name!r} router carries no boundary state")
    return router_class(num_shards, state=state)


# ----------------------------------------------------------------------
# Rebalancing policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RebalancePolicy:
    """When to split a hot shard (the P-Grid path-split rule, parametrised).

    A shard is split when it holds at least ``min_shard_rows`` rows and
    either exceeds the *skew* bound — more than ``threshold`` times the
    ideal per-shard share ``total_rows / num_shards`` (meaningful only with
    two or more shards) — or the absolute *capacity* bound ``split_rows``.
    The capacity bound defaults on (1024 rows) because it is the only
    trigger a single-shard backend has: without it, ``rebalance`` at
    ``shards=1`` could never grow in place.  Pass ``split_rows=None`` for
    pure skew semantics.  Among shards over the bounds, the one with the
    most resident rows splits first, routed update traffic breaking ties.
    Splits stop at ``max_shards``; loads are checked every ``check_every``
    write batches.
    """

    threshold: float = 2.0
    max_shards: int = 16
    split_rows: Optional[int] = 1024
    min_shard_rows: int = 8
    check_every: int = 1

    def __post_init__(self) -> None:
        if self.threshold <= 1.0:
            raise TrustModelError(
                f"rebalance threshold must be > 1, got {self.threshold}"
            )
        if self.max_shards < 1:
            raise TrustModelError(f"max_shards must be >= 1, got {self.max_shards}")
        if self.split_rows is not None and self.split_rows < 2:
            raise TrustModelError(f"split_rows must be >= 2, got {self.split_rows}")
        if self.min_shard_rows < 2:
            raise TrustModelError(
                f"min_shard_rows must be >= 2, got {self.min_shard_rows}"
            )
        if self.check_every < 1:
            raise TrustModelError(
                f"check_every must be >= 1, got {self.check_every}"
            )

    def should_split(self, rows: int, total_rows: int, num_shards: int) -> bool:
        """Whether a shard holding ``rows`` of ``total_rows`` must split."""
        if num_shards >= self.max_shards or rows < self.min_shard_rows:
            return False
        if self.split_rows is not None and rows > self.split_rows:
            return True
        return num_shards > 1 and rows > self.threshold * (total_rows / num_shards)


@dataclass(frozen=True)
class RebalanceEvent:
    """One completed live split, for introspection and benchmarks."""

    source_shard: int
    new_shard: int
    rows_kept: int
    rows_moved: int
    num_shards_after: int
    seconds: float


def _matrix_columns(
    matrix: "np.ndarray | SparseWitnessMatrix", positions: np.ndarray
):
    """Column-select a witness matrix in either representation."""
    if isinstance(matrix, SparseWitnessMatrix):
        return matrix.select_columns(positions)
    return matrix[:, positions, :]


#: Per-subject row keys of the row-partitioned backends, used to re-shard a
#: snapshot into a different shard count.  Keys not listed here (``prior``,
#: ``half_life``, …) are per-backend configuration copied from shard 0.
_ROW_KEYS = {
    "beta": ("alpha", "beta", "count"),
    "decay": ("alpha", "beta", "ref", "count"),
}
_ROW_DTYPES = {"alpha": np.float64, "beta": np.float64, "ref": np.float64,
               "count": np.int64}


class ShardedBackend(TrustBackend):
    """N inner trust backends behind one ``TrustBackend`` interface.

    Parameters
    ----------
    kind:
        Registered backend name instantiated per shard (``beta``,
        ``complaint``, ``decay``, or any :func:`register_backend` addition).
    num_shards:
        How many partitions to split the peer-id space into initially
        (rebalancing may grow the count up to the policy's ``max_shards``).
    router:
        Routing strategy: a name from :data:`ROUTER_NAMES` or a ready
        :class:`ShardRouter` (whose shard count must match).
    rebalance:
        Optional :class:`RebalancePolicy`.  When set, the backend monitors
        per-shard load after every write batch and splits hot shards in
        place (requires a splittable router, i.e. ``range`` or ``ring``).
    **shard_params:
        Constructor parameters forwarded to every inner backend.

    The complaint family gets special treatment in three places (global
    median reference, two-shard complaint delivery, complaint-log
    re-sharding); everything else is generic scatter/gather.  When the
    inner backends implement the ``ComplaintStore`` protocol the wrapper
    does too, so a sharded complaint backend can serve as a community's
    shared complaint store exactly like an unsharded one.
    """

    name = "sharded"

    def __init__(
        self,
        kind: str,
        num_shards: int,
        router: object = "hash",
        rebalance: Optional[RebalancePolicy] = None,
        **shard_params: object,
    ):
        if num_shards < 1:
            raise TrustModelError(f"num_shards must be >= 1, got {num_shards}")
        if "shards" in shard_params:
            raise TrustModelError("nested sharding is not supported")
        if shard_params.get("store") is not None:
            # One store behind every shard would persist cross-shard
            # complaints twice (each delivery files into the same log) and
            # double-count them on any rebuild.
            raise TrustModelError(
                "sharded backends own their per-shard stores; "
                "a shared store cannot back multiple shards"
            )
        self._kind = kind
        self._shard_params: Dict[str, object] = dict(shard_params)
        if isinstance(router, ShardRouter):
            if router.num_shards != num_shards:
                raise TrustModelError(
                    f"router covers {router.num_shards} shards, "
                    f"backend has {num_shards}"
                )
            self._router = router
        else:
            self._router = create_router(str(router), num_shards)
        self._shards: Tuple[TrustBackend, ...] = tuple(
            self._create_shard() for _ in range(num_shards)
        )
        self._complaint_family = self._detect_complaint_family()
        if rebalance is not None:
            if not isinstance(rebalance, RebalancePolicy):
                raise TrustModelError(
                    "rebalance must be a RebalancePolicy or None, "
                    f"got {type(rebalance).__name__}"
                )
            if not self._router.supports_split:
                raise TrustModelError(
                    f"rebalancing requires a splittable router "
                    f"('range' or 'ring'), not {self._router.name!r}"
                )
            if not self._complaint_family and kind not in _ROW_KEYS:
                raise TrustModelError(
                    f"rebalancing is not supported for backend kind {kind!r}"
                )
        self._rebalance = rebalance
        self._rebalance_events: List[RebalanceEvent] = []
        self._split_seconds = 0.0
        self._in_rebalance = False
        #: Evidence units (observations / complaint deliveries) routed to
        #: each shard — the update-traffic half of the load signal.
        self._shard_updates: List[int] = [0] * num_shards
        # Routing is pure but hashing every id on every query adds up;
        # memoise per instance (invalidated whenever the router changes).
        self._route_cache: Dict[str, int] = {}
        # Complaint family: a complaint is delivered to both involved peers'
        # home shards; restricting each shard's counters to its own peer-id
        # range keeps every shard's agent set and metric array exactly the
        # home partition (see ComplaintTrustBackend.restrict_rows), so the
        # global median pools per-shard arrays at numpy speed.  The median
        # is cached per write version.
        if self._complaint_family:
            self._restrict_shard_rows()
        self._writes = 0
        self._reference_cache: Tuple[int, float] = (-1, 0.0)

    def _create_shard(self, **overrides: object) -> TrustBackend:
        """Instantiate one inner shard (``shard_params`` merged with overrides).

        The single construction point for inner backends — initial shards,
        split successors and re-sharded complaint shards all come through
        here, so a subclass that hosts shards elsewhere (the worker-process
        deployment in :mod:`repro.trust.workers`) overrides exactly one
        method to change where every shard lives.
        """
        params = dict(self._shard_params)
        params.update(overrides)
        shard = create_backend(self._kind, **params)
        if self.telemetry.enabled:
            # Shards minted after bind_telemetry (splits, re-shards) report
            # through the same registry as the initial fleet.
            shard.bind_telemetry(self.telemetry)
        return shard

    def _detect_complaint_family(self) -> bool:
        """Whether the inner shards are complaint-family backends."""
        return isinstance(self._shards[0], ComplaintTrustBackend)

    def _restrict_shard_rows(self) -> None:
        for index, shard in enumerate(self._shards):
            self._restrict_one(shard, index)

    def _restrict_one(self, shard: TrustBackend, home: int) -> None:
        shard.restrict_rows(  # type: ignore[attr-defined]
            lambda agent, home=home: self.shard_index_of(agent) == home
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """Registered name of the inner backends."""
        return self._kind

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def shards(self) -> Tuple[TrustBackend, ...]:
        """The inner backends, indexable by shard index."""
        return self._shards

    @property
    def rebalance_policy(self) -> Optional[RebalancePolicy]:
        return self._rebalance

    @property
    def rebalance_events(self) -> Tuple[RebalanceEvent, ...]:
        """Every live split performed so far, in order."""
        return tuple(self._rebalance_events)

    @property
    def rebalance_seconds(self) -> float:
        """Cumulative wall time spent inside live splits (the split pause)."""
        return self._split_seconds

    @property
    def shard_update_counts(self) -> Tuple[int, ...]:
        """Evidence units routed to each shard (split-adjusted)."""
        return tuple(self._shard_updates)

    def shard_row_counts(self) -> np.ndarray:
        """Resident rows per shard (the working-set half of the load signal).

        Uses the backends' O(1) ``row_count`` rather than materialising
        ``known_subjects()`` name tuples — this is polled after every write
        batch when a rebalance policy is active.
        """
        return np.array(
            [shard.row_count() for shard in self._shards], dtype=np.int64
        )

    def describe(self) -> str:
        suffix = ""
        if self._rebalance is not None:
            suffix = f", rebalance@{self._rebalance.threshold:g}"
        return (
            f"sharded({len(self._shards)}x{self._kind}, "
            f"{self._router.name}{suffix})"
        )

    def _config_parts(self) -> List[str]:
        def flag(value: object) -> str:
            return "on" if value else "off"

        rebalance = "rebalance off"
        if self._rebalance is not None:
            rebalance = "rebalance auto@{:g} (max {})".format(
                self._rebalance.threshold, self._rebalance.max_shards
            )
        return [
            self._kind,
            "{} shards, {} router".format(len(self._shards), self._router.name),
            rebalance,
            "compact " + flag(self._shard_params.get("compact", False)),
            "cache-scores " + flag(self._shard_params.get("cache_scores", True)),
            "workers 0",
            "recovery off",
        ]

    def bind_telemetry(self, registry) -> None:
        """Bind the wrapper and every current shard to ``registry``.

        Registers a view over the existing rebalance / scatter tallies
        (the attributes stay authoritative) so one snapshot reports shard
        count, per-shard routed volumes and split pauses.
        """
        super().bind_telemetry(registry)
        for shard in self._shards:
            shard.bind_telemetry(registry)
        if registry.enabled:
            registry.add_view("sharded", self._telemetry_view)

    def _telemetry_view(self) -> Dict[str, object]:
        view: Dict[str, object] = {
            "shards": len(self._shards),
            "write_batches": self._writes,
            "rebalance_splits": len(self._rebalance_events),
            "rebalance_rows_moved": sum(
                event.rows_moved for event in self._rebalance_events
            ),
            # Routed through the timings section (monotonic clock).
            "split_pause_seconds": self._split_seconds,
        }
        for index, count in enumerate(self._shard_updates):
            view["shard_updates.{:04d}".format(index)] = count
        return view

    def shard_index_of(self, peer_id: str) -> int:
        """Home shard index of ``peer_id`` (memoised routing)."""
        index = self._route_cache.get(peer_id)
        if index is None:
            index = self._router.shard_of(peer_id)
            self._route_cache[peer_id] = index
        return index

    def _home_shard(self, peer_id: str) -> TrustBackend:
        return self._shards[self.shard_index_of(peer_id)]

    def _require_complaint_family(self) -> ComplaintTrustBackend:
        if not self._complaint_family:
            raise TrustModelError(
                f"operation requires complaint-family shards, not {self._kind!r}"
            )
        return self._shards[0]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scatter helpers
    # ------------------------------------------------------------------
    def _route_many(self, subject_ids: Sequence[str]) -> np.ndarray:
        """Shard index per subject (memoised, one routing pass)."""
        cache = self._route_cache
        try:
            # Fast path: every id already routed — one C-level pass.
            return np.fromiter(
                map(cache.__getitem__, subject_ids),
                dtype=np.intp,
                count=len(subject_ids),
            )
        except KeyError:
            shard_of = self._router.shard_of
            for subject_id in subject_ids:
                if subject_id not in cache:
                    cache[subject_id] = shard_of(subject_id)
            return np.fromiter(
                map(cache.__getitem__, subject_ids),
                dtype=np.intp,
                count=len(subject_ids),
            )

    def _partition(
        self, subject_ids: Sequence[str]
    ) -> List[Tuple[int, np.ndarray, List[str]]]:
        """Group query positions by home shard (ascending shard index).

        Uses a stable argsort over the routed indices so the grouping runs
        at numpy speed; within a shard the caller's order is preserved,
        keeping per-subject accumulation sequences — and therefore float
        results — identical to the unsharded backend.
        """
        routed = self._route_many(subject_ids)
        order = np.argsort(routed, kind="stable")
        sorted_shards = routed[order]
        boundaries = np.flatnonzero(sorted_shards[1:] != sorted_shards[:-1]) + 1
        id_array = np.asarray(subject_ids, dtype=object)
        groups = []
        for positions in np.split(order, boundaries):
            index = int(routed[positions[0]])
            groups.append((index, positions, id_array[positions].tolist()))
        return groups

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        if not observations:
            return
        cache = self._route_cache
        cache_get = cache.get
        shard_of = self._router.shard_of
        buckets: List[Optional[List[TrustObservation]]] = [None] * len(self._shards)
        complaint_family = self._complaint_family
        for observation in observations:
            subject_id = observation.subject_id
            home = cache_get(subject_id)
            if home is None:
                home = cache[subject_id] = shard_of(subject_id)
            bucket = buckets[home]
            if bucket is None:
                bucket = buckets[home] = []
            bucket.append(observation)
            if (
                complaint_family
                and observation.complaint_filed
                and observation.observer_id != observation.subject_id
            ):
                # The complaint also increments the complainant's filed
                # count, whose authoritative row lives in *its* home shard.
                observer_id = observation.observer_id
                filer_home = cache_get(observer_id)
                if filer_home is None:
                    filer_home = cache[observer_id] = shard_of(observer_id)
                if filer_home != home:
                    filer_bucket = buckets[filer_home]
                    if filer_bucket is None:
                        filer_bucket = buckets[filer_home] = []
                    filer_bucket.append(observation)
        self._writes += 1
        telemetry = self.telemetry
        with telemetry.span("sharded.update_many"):
            fanout = 0
            for index, bucket in enumerate(buckets):
                if bucket is not None:
                    fanout += 1
                    self._shard_updates[index] += len(bucket)
                    self._shards[index].update_many(bucket)
            if telemetry.enabled:
                telemetry.observe("sharded.update_fanout", fanout)
        self._maybe_rebalance()

    def record_complaints(self, complaints: Sequence[Complaint]) -> None:
        """Scatter ready-made complaints to the accused's and filer's shards."""
        self._require_complaint_family()
        buckets: Dict[int, List[Complaint]] = {}
        for complaint in complaints:
            home = self.shard_index_of(complaint.accused_id)
            buckets.setdefault(home, []).append(complaint)
            filer_home = self.shard_index_of(complaint.complainant_id)
            if filer_home != home:
                buckets.setdefault(filer_home, []).append(complaint)
        self._writes += 1
        for index in sorted(buckets):
            self._shard_updates[index] += len(buckets[index])
            self._shards[index].record_complaints(buckets[index])  # type: ignore[attr-defined]
        self._maybe_rebalance()

    # ------------------------------------------------------------------
    # Live rebalancing
    # ------------------------------------------------------------------
    def _maybe_rebalance(self) -> None:
        """Split hot shards until the policy's bounds hold (or max is hit)."""
        policy = self._rebalance
        if policy is None or self._in_rebalance:
            return
        if self._writes % policy.check_every:
            return
        self._in_rebalance = True
        try:
            while len(self._shards) < policy.max_shards:
                rows = self.shard_row_counts()
                total = int(rows.sum())
                # Hottest by resident rows; routed update traffic breaks
                # ties (two equally-sized shards: split the busier one).
                updates = self._shard_updates
                hot = max(
                    range(len(rows)),
                    key=lambda index: (int(rows[index]), updates[index]),
                )
                if not policy.should_split(int(rows[hot]), total, len(self._shards)):
                    break
                before = int(rows[hot])
                try:
                    self.split_shard(hot)
                except ShardSplitError:
                    break  # key range too narrow to split further
                if self._rebalance_events[-1].rows_kept >= before:
                    break  # the split moved nothing; stop rather than spin
        finally:
            self._in_rebalance = False

    def split_shard(self, index: int) -> int:
        """Split shard ``index`` in place; returns the new shard's index.

        The hot shard is snapshotted through the same per-shard manifest
        format :meth:`snapshot` emits, the router's key table gains the new
        shard (only the hot shard's keys move), the snapshot's rows are
        redistributed (beta/decay) or its complaint log re-filed
        (complaint) onto the two successors, and the shard table is swapped
        atomically.  Scores are bit-identical before and after.
        """
        if not 0 <= index < len(self._shards):
            raise TrustModelError(
                f"shard index {index} out of range [0, {len(self._shards)})"
            )
        if not self._complaint_family and self._kind not in _ROW_KEYS:
            raise TrustModelError(
                f"live splits are not supported for backend kind {self._kind!r}"
            )
        started = time.perf_counter()  # repro: allow(DET001) — split-pause timing, reported via the telemetry timings section only
        state = self._shards[index].snapshot()
        saved_state = self._router.state()
        saved_shards = self._router.num_shards
        new_index = self._router.split(index)
        self._route_cache.clear()
        try:
            if self._complaint_family:
                kept_shard, moved_shard, kept, moved = self._split_complaints(
                    state, index, new_index
                )
            else:
                kept_shard, moved_shard, kept, moved = self._split_rows(
                    state, index, new_index
                )
        except Exception:
            # Roll the router back so a failed redistribution leaves the
            # backend exactly as it was: the shard table was never touched
            # and routing must not point at a phantom shard.
            self._router = create_router(
                self._router.name, saved_shards, state=saved_state
            )
            self._route_cache.clear()
            raise
        shards = list(self._shards)
        shards[index] = kept_shard
        shards.append(moved_shard)
        self._shards = tuple(shards)
        # Re-apportion the split shard's routed-update tally by surviving
        # rows so the traffic signal stays roughly proportional.
        updates = self._shard_updates[index]
        kept_updates = updates * kept // max(1, kept + moved)
        self._shard_updates[index] = kept_updates
        self._shard_updates.append(updates - kept_updates)
        self._writes += 1
        seconds = time.perf_counter() - started  # repro: allow(DET001) — split-pause timing, reported via the telemetry timings section only
        self._split_seconds += seconds
        self._rebalance_events.append(
            RebalanceEvent(
                source_shard=index,
                new_shard=new_index,
                rows_kept=kept,
                rows_moved=moved,
                num_shards_after=len(self._shards),
                seconds=seconds,
            )
        )
        return new_index

    def _row_states(
        self,
        shard_states: List[Dict[str, np.ndarray]],
        num_targets: int,
        position_of,
    ) -> List[Dict[str, np.ndarray]]:
        """Regroup row-partitioned shard snapshots into ``num_targets`` states.

        The single redistribution engine behind both live splits and
        re-sharding restores: rows are bucketed by ``position_of(peer_id)``
        and each target gets a restorable shard state carrying shard 0's
        configuration keys.  Row values are copied verbatim, so no score
        can drift.
        """
        row_keys = _ROW_KEYS.get(self._kind)
        if row_keys is None:
            raise TrustModelError(
                f"re-sharding is not supported for backend kind {self._kind!r}"
            )
        config_keys = [
            key
            for key in shard_states[0]
            if key not in row_keys and key != "peer_ids"
        ]
        names: List[List[str]] = [[] for _ in range(num_targets)]
        rows: List[Dict[str, List[float]]] = [
            {key: [] for key in row_keys} for _ in range(num_targets)
        ]
        for shard_state in shard_states:
            for row, peer_id in enumerate(shard_state["peer_ids"]):
                peer_name = str(peer_id)
                target = position_of(peer_name)
                names[target].append(peer_name)
                for key in row_keys:
                    rows[target][key].append(shard_state[key][row])
        states = []
        for index in range(num_targets):
            state = {
                key: np.asarray(shard_states[0][key]) for key in config_keys
            }
            state["peer_ids"] = np.array(names[index], dtype=object)
            for key in row_keys:
                state[key] = np.array(rows[index][key], dtype=_ROW_DTYPES[key])
            states.append(state)
        return states

    def _split_rows(
        self, state: Dict[str, np.ndarray], kept_index: int, moved_index: int
    ) -> Tuple[TrustBackend, TrustBackend, int, int]:
        """Redistribute a beta/decay shard snapshot onto two successors."""

        def position_of(peer_name: str) -> int:
            home = self.shard_index_of(peer_name)
            if home == kept_index:
                return 0
            if home == moved_index:
                return 1
            # A split may only rehome keys between the two successors;
            # anything else is a router-invariant violation that would
            # otherwise strand the row where queries never reach it.
            raise TrustModelError(
                f"split rehomed {peer_name!r} to shard {home}, outside "
                f"successors ({kept_index}, {moved_index})"
            )

        states = self._row_states([state], 2, position_of)
        successors = []
        for shard_state in states:
            successor = self._create_shard()
            successor.restore(shard_state)
            successors.append(successor)
        return (
            successors[0],
            successors[1],
            len(states[0]["peer_ids"]),
            len(states[1]["peer_ids"]),
        )

    def _complaint_shard_from_config(
        self, shard_state: Dict[str, np.ndarray], home_index: int
    ) -> TrustBackend:
        """A fresh, row-restricted complaint shard with a snapshot's config."""
        tolerance_factor, trust_scale = (
            float(value) for value in shard_state["config"]
        )
        # The snapshot's scoring configuration overrides whatever the shard
        # params carry; layout/caching knobs (compact, cache_scores) are
        # deployment configuration and stay with this wrapper's params.
        shard = self._create_shard(
            tolerance_factor=tolerance_factor,
            trust_scale=trust_scale,
            metric_mode=str(np.asarray(shard_state["metric_mode"]).item()),
        )
        self._restrict_one(shard, home_index)
        return shard

    def _split_complaints(
        self, state: Dict[str, np.ndarray], kept_index: int, moved_index: int
    ) -> Tuple[TrustBackend, TrustBackend, int, int]:
        """Re-file a complaint shard's log onto two successor shards.

        Every complaint in the hot shard's store involves at least one peer
        homed in the old range; it is re-delivered to whichever of the two
        successors now homes each involved peer.  Shards outside the split
        already hold their own copies (the two-shard delivery invariant),
        so nothing is delivered beyond the successors and no count changes.
        """
        successors = (
            self._complaint_shard_from_config(state, kept_index),
            self._complaint_shard_from_config(state, moved_index),
        )
        batches: Tuple[List[Complaint], List[Complaint]] = ([], [])
        for complainant, accused, timestamp in zip(
            state["complainants"], state["accused"], state["timestamps"]
        ):
            complaint = Complaint(
                complainant_id=str(complainant),
                accused_id=str(accused),
                timestamp=float(timestamp),
            )
            targets = {
                self.shard_index_of(complaint.accused_id),
                self.shard_index_of(complaint.complainant_id),
            }
            if kept_index in targets:
                batches[0].append(complaint)
            if moved_index in targets:
                batches[1].append(complaint)
        for side in (0, 1):
            if batches[side]:
                successors[side].record_complaints(batches[side])
        return (
            successors[0],
            successors[1],
            successors[0].row_count(),
            successors[1].row_count(),
        )

    # ------------------------------------------------------------------
    # Reads (scatter the query, gather into caller order)
    # ------------------------------------------------------------------
    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        out = np.zeros(len(subject_ids))
        if not len(subject_ids):
            return out
        telemetry = self.telemetry
        with telemetry.span("sharded.scores_for"):
            groups = self._partition(subject_ids)
            if telemetry.enabled:
                telemetry.observe("sharded.query_fanout", len(groups))
            if self._complaint_family:
                reference = self.reference_metric()
                for index, positions, subjects in groups:
                    shard = self._shards[index]
                    metrics = shard.metrics_for(subjects)  # type: ignore[attr-defined]
                    out[positions] = shard.scores_from_metrics(  # type: ignore[attr-defined]
                        metrics, reference
                    )
                return out
            for index, positions, subjects in groups:
                out[positions] = self._shards[index].scores_for(subjects, now=now)
            return out

    def trust_decisions(
        self,
        subject_ids: Sequence[str],
        threshold: float = 0.5,
        now: Optional[float] = None,
    ) -> np.ndarray:
        out = np.zeros(len(subject_ids), dtype=bool)
        if not len(subject_ids):
            return out
        if self._complaint_family:
            reference = self.reference_metric()
            for index, positions, subjects in self._partition(subject_ids):
                shard = self._shards[index]
                metrics = shard.metrics_for(subjects)  # type: ignore[attr-defined]
                out[positions] = shard.decisions_from_metrics(  # type: ignore[attr-defined]
                    metrics, reference
                )
            return out
        for index, positions, subjects in self._partition(subject_ids):
            out[positions] = self._shards[index].trust_decisions(
                subjects, threshold=threshold, now=now
            )
        return out

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        matrix, discounts = validate_witness_matrix(
            len(subject_ids),
            witness_belief_matrix,
            discount_vector,
            positive=not self._complaint_family,
        )
        out = np.zeros(len(subject_ids))
        if not len(subject_ids):
            return out
        if self._complaint_family:
            reference = self.reference_metric()
            for index, positions, subjects in self._partition(subject_ids):
                shard = self._shards[index]
                metrics = shard.witness_metrics_for(  # type: ignore[attr-defined]
                    subjects, _matrix_columns(matrix, positions), discounts
                )
                out[positions] = shard.scores_from_metrics(  # type: ignore[attr-defined]
                    metrics, reference
                )
            return out
        # The witness-belief matrix splits column-wise: each shard sees
        # every witness's reports about its own subjects only.
        for index, positions, subjects in self._partition(subject_ids):
            out[positions] = self._shards[index].aggregate_witness_reports(
                subjects, _matrix_columns(matrix, positions), discounts, now=now
            )
        return out

    def known_subjects(self) -> Tuple[str, ...]:
        # Complaint shards are row-filtered to their home range, so a plain
        # concatenation is the home partition for every backend family.
        return tuple(
            subject
            for shard in self._shards
            for subject in shard.known_subjects()
        )

    def reference_metric(self) -> float:
        """The *global* community median metric (complaint family only).

        Pools every shard's (home-filtered) in-store metric array into one
        median — the same multiset an unsharded backend computes its
        reference over, so the decision rule is unchanged by sharding.
        Cached per write version (one query batch recomputes it at most
        once).
        """
        self._require_complaint_family()
        version, cached = self._reference_cache
        if version == self._writes:
            return cached
        values = np.concatenate(
            [
                shard.metric_values_in_store()  # type: ignore[attr-defined]
                for shard in self._shards
            ]
        )
        reference = float(np.median(values)) if values.size else 0.0
        self._reference_cache = (self._writes, reference)
        return reference

    # ------------------------------------------------------------------
    # Scalar conveniences (delegate to the home shard)
    # ------------------------------------------------------------------
    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        return self._home_shard(subject_id).belief(subject_id, now=now)  # type: ignore[attr-defined]

    def observation_count(self, subject_id: str) -> int:
        return self._home_shard(subject_id).observation_count(subject_id)  # type: ignore[attr-defined]

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        return self.score(subject_id, now=now)

    def counts(self, agent_id: str) -> Tuple[int, int]:
        """``(received, filed)`` complaint counts from the agent's home shard."""
        self._require_complaint_family()
        return self._home_shard(agent_id).counts(agent_id)  # type: ignore[attr-defined]

    def trustworthy(self, subject_id: str) -> bool:
        return bool(self.trust_decisions((subject_id,))[0])

    # ------------------------------------------------------------------
    # ComplaintStore protocol (complaint family only) — a sharded backend
    # can be a community's shared complaint store, like its inner kind.
    # ------------------------------------------------------------------
    @property
    def tolerance_factor(self) -> float:
        return self._require_complaint_family().tolerance_factor

    @property
    def metric_mode(self) -> str:
        return self._require_complaint_family().metric_mode

    def file_complaint(self, complaint: Complaint) -> None:
        self.record_complaints((complaint,))

    def complaints_about(self, agent_id: str) -> Sequence[Complaint]:
        self._require_complaint_family()
        return self._home_shard(agent_id).complaints_about(agent_id)  # type: ignore[attr-defined]

    def complaints_by(self, agent_id: str) -> Sequence[Complaint]:
        self._require_complaint_family()
        return self._home_shard(agent_id).complaints_by(agent_id)  # type: ignore[attr-defined]

    def known_agents(self) -> Sequence[str]:
        self._require_complaint_family()
        return list(self.known_subjects())

    def all_complaints(self) -> Tuple[Complaint, ...]:
        """The global complaint log, each complaint exactly once.

        Cross-shard complaints are stored in two shards; collecting each
        shard's log filtered to *accused-home* complaints de-duplicates
        without comparing complaint values (identical duplicate filings are
        legitimate evidence and must survive).
        """
        self._require_complaint_family()
        complaints: List[Complaint] = []
        for index, shard in enumerate(self._shards):
            for complaint in shard.all_complaints():  # type: ignore[attr-defined]
                if self.shard_index_of(complaint.accused_id) == index:
                    complaints.append(complaint)
        return tuple(complaints)

    def __len__(self) -> int:
        # Version stamp for change-tracking caches (cross-shard complaints
        # count twice — monotonicity is what matters, not the total).
        return sum(len(shard) for shard in self._shards)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Persistence: per-shard manifest, re-shardable
    # ------------------------------------------------------------------
    def snapshot_items(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Stream the per-shard manifest one entry at a time.

        Manifest metadata (router name *and boundary state*, inner kind,
        shard count) streams first, then every shard's own
        ``snapshot_items`` under its ``shard-NNNN/`` key prefix, then the
        prefix manifest.  Shard columns are materialised one at a time, so
        checkpointing a million-row sharded table holds at most one
        evidence column in memory beyond the consumer's own buffering —
        :meth:`snapshot` is simply ``dict`` of this stream.
        """
        yield "backend", np.array(self.name)
        yield "kind", np.array(self._kind)
        yield "router", np.array(self._router.name)
        yield "num_shards", np.array([len(self._shards)])
        router_state = self._router.state()
        if router_state is not None:
            yield "router_state", router_state
        prefixes: List[str] = []
        for index, shard in enumerate(self._shards):
            prefix = f"shard-{index:04d}"
            prefixes.append(prefix)
            for key, value in shard.snapshot_items():
                yield f"{prefix}/{key}", value
        yield "manifest", np.array(prefixes, dtype=object)

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Serialise every shard independently under a ``shard-NNNN/`` prefix.

        The manifest (shard prefixes, router name *and boundary state*,
        inner kind) is what a multi-worker deployment needs to checkpoint
        shards in parallel and to restore onto a different shard layout.
        The router state matters once live splits have run: the shards are
        no longer equal-width, and re-filing a snapshot's complaint logs
        needs the exact key table they were written under.
        """
        return dict(self.snapshot_items())

    def restore_items(
        self, items: Iterable[Tuple[str, np.ndarray]]
    ) -> None:
        """Restore from a :meth:`snapshot_items` stream, shard by shard.

        When the stream's recorded router layout matches the live one, each
        shard is restored as soon as its ``shard-NNNN/`` group completes —
        the full manifest is never materialised.  A layout mismatch needs
        the whole snapshot to redistribute rows, so the stream is drained
        into :meth:`restore`.
        """
        iterator = iter(items)
        meta: Dict[str, np.ndarray] = {}
        first_shard: Optional[Tuple[str, np.ndarray]] = None
        for key, value in iterator:
            if key.startswith("shard-") and "/" in key:
                first_shard = (key, value)
                break
            meta[key] = value
        self._check_snapshot_backend(meta)
        kind = str(np.asarray(meta["kind"]).item())
        if kind != self._kind:
            raise TrustModelError(
                f"snapshot holds {kind!r} shards, cannot restore into "
                f"{self._kind!r} shards"
            )
        old_router = create_router(
            str(np.asarray(meta["router"]).item()),
            int(meta["num_shards"][0]),
            state=meta.get("router_state"),
        )
        entries = (
            itertools.chain([first_shard], iterator)
            if first_shard is not None
            else iterator
        )
        if not old_router.same_layout(self._router):
            # Re-sharding needs every row before anything is placed; drain
            # the stream and take the materialised path.
            state = dict(meta)
            state.update(entries)
            self.restore(state)
            return
        self._route_cache.clear()
        self._writes += 1
        restored = 0
        current_prefix: Optional[str] = None
        shard_state: Dict[str, np.ndarray] = {}

        def flush() -> None:
            nonlocal restored, shard_state
            if current_prefix is None:
                return
            index = int(current_prefix[len("shard-"):])
            if not 0 <= index < len(self._shards):
                raise TrustModelError(
                    f"snapshot prefix {current_prefix!r} out of range for "
                    f"{len(self._shards)} shards"
                )
            self._shards[index].restore(shard_state)
            restored += 1
            shard_state = {}

        for key, value in entries:
            if not (key.startswith("shard-") and "/" in key):
                continue  # trailing manifest entry
            prefix, _, inner = key.partition("/")
            if prefix != current_prefix:
                flush()
                current_prefix = prefix
            shard_state[inner] = value
        flush()
        if restored != len(self._shards):
            raise TrustModelError(
                f"snapshot stream restored {restored} shards, "
                f"backend has {len(self._shards)}"
            )
        self._shard_updates = [0] * len(self._shards)

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        self._check_snapshot_backend(state)
        kind = str(np.asarray(state["kind"]).item())
        if kind != self._kind:
            raise TrustModelError(
                f"snapshot holds {kind!r} shards, cannot restore into "
                f"{self._kind!r} shards"
            )
        prefixes = [str(prefix) for prefix in state["manifest"]]
        if len(prefixes) != int(state["num_shards"][0]):
            raise TrustModelError(
                f"snapshot manifest lists {len(prefixes)} shards but records "
                f"num_shards={int(state['num_shards'][0])}"
            )
        shard_states: List[Dict[str, np.ndarray]] = []
        for prefix in prefixes:
            marker = prefix + "/"
            shard_states.append(
                {
                    key[len(marker):]: value
                    for key, value in state.items()
                    if key.startswith(marker)
                }
            )
        old_router = create_router(
            str(np.asarray(state["router"]).item()),
            len(shard_states),
            state=state.get("router_state"),
        )
        self._route_cache.clear()
        self._writes += 1
        if old_router.same_layout(self._router):
            for shard, shard_state in zip(self._shards, shard_states):
                shard.restore(shard_state)
            self._shard_updates = [0] * len(self._shards)
            return
        self._in_rebalance = True  # a restore is not a load signal
        try:
            self._restore_resharded(old_router, shard_states)
        finally:
            self._in_rebalance = False
            # Re-filing a complaint log goes through record_complaints,
            # which tallies routed units; a restore is not traffic, so the
            # load counters reset *after* the redistribution.
            self._shard_updates = [0] * len(self._shards)

    def _restore_resharded(
        self, old_router: ShardRouter, shard_states: List[Dict[str, np.ndarray]]
    ) -> None:
        """Redistribute a snapshot taken under a different shard layout.

        Handles any layout change: different shard count (more shards than
        peers leaves some shards empty; a single shard absorbs everything),
        different router strategy, or the uneven boundary tables a
        rebalanced run checkpoints.
        """
        if self._complaint_family:
            self._reshard_complaints(old_router, shard_states)
            return
        states = self._row_states(
            shard_states, len(self._shards), self.shard_index_of
        )
        for shard, shard_state in zip(self._shards, states):
            shard.restore(shard_state)

    def _reshard_complaints(
        self, old_router: ShardRouter, shard_states: List[Dict[str, np.ndarray]]
    ) -> None:
        """Re-file the de-duplicated global complaint log onto the new layout."""
        complaints: List[Complaint] = []
        for index, shard_state in enumerate(shard_states):
            for complainant, accused, timestamp in zip(
                shard_state["complainants"],
                shard_state["accused"],
                shard_state["timestamps"],
            ):
                if old_router.shard_of(str(accused)) == index:
                    complaints.append(
                        Complaint(
                            complainant_id=str(complainant),
                            accused_id=str(accused),
                            timestamp=float(timestamp),
                        )
                    )
        self._shards = tuple(
            self._complaint_shard_from_config(shard_states[0], index)
            for index in range(len(self._shards))
        )
        self.record_complaints(complaints)
