"""Sharded trust backends: partition trust state by peer-id range.

The paper's premise is that reputation data in a P2P community is too large
and too decentralised to live on one node — that is why complaints are
stored in P-Grid in the first place.  This module brings the same idea to
the :class:`~repro.trust.backend.TrustBackend` layer: a
:class:`ShardedBackend` splits the peer-id space across ``N`` inner backends
of any registered kind (``beta``, ``complaint``, ``decay``, …) while
presenting the *same* ``TrustBackend`` interface, so every consumer — the
reputation manager, witness aggregation, matching, the community simulation
— stays unchanged and shard-agnostic.

Routing
-------
A :class:`ShardRouter` maps a subject-id to its home shard through a stable
32-bit key (``crc32`` of the UTF-8 id, so the assignment is identical
across processes and runs, unlike Python's seeded ``hash``):

``hash``
    ``key % N`` — uniform, order-free assignment.
``range``
    ``key * N >> 32`` — ``N`` contiguous, equal-width intervals of the key
    space, mirroring how P-Grid partitions its trie key space; a shard owns
    a contiguous key range, which is the layout a distributed deployment
    splitting by key prefix would produce.

Semantics
---------
* ``update_many`` / ``record_complaints`` scatter a batch by home shard
  (order-preserving within each shard, so results are bit-identical to the
  unsharded backend).  Complaint evidence touches *two* rows — the accused's
  received count and the complainant's filed count — so it is delivered to
  both peers' home shards; each shard counts only its own peer-id range
  (``ComplaintTrustBackend.restrict_rows``), so every home row sees all of
  its evidence and no shard holds half-counted foreign rows.
* ``scores_for`` / ``trust_decisions`` / ``aggregate_witness_reports``
  scatter the query (the witness-belief matrix splits column-wise) and
  gather per-shard answers back into caller order.  For the complaint
  family the community *median* reference is global state: the wrapper
  pools every shard's home-subject metrics, takes one global median, and
  hands it to each shard's explicit-reference scoring helpers — per-shard
  medians would silently change the decision rule.
* ``snapshot`` / ``restore`` produce a per-shard manifest: each shard
  serialises independently under a ``shard-NNNN/`` key prefix (the format a
  multi-worker deployment checkpoints in parallel), plus the router/shard
  count needed to re-shard.  Restoring into a *different* shard count (or
  router) redistributes per-subject rows — or re-files the complaint log —
  onto the new layout without score drift.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrustModelError
from repro.trust.aggregation import validate_witness_matrix
from repro.trust.backend import (
    ComplaintTrustBackend,
    TrustBackend,
    TrustObservation,
    create_backend,
)
from repro.trust.beta import BetaBelief
from repro.trust.evidence import Complaint

__all__ = [
    "ShardRouter",
    "HashShardRouter",
    "RangeShardRouter",
    "ROUTER_NAMES",
    "create_router",
    "ShardedBackend",
]

_KEY_BITS = 32

#: Router strategies selectable by name (CLI ``--shard-router``).
ROUTER_NAMES = ("hash", "range")


def shard_key(peer_id: str) -> int:
    """Stable 32-bit routing key for a peer id.

    ``crc32`` rather than Python's builtin ``hash``: the builtin is salted
    per process (``PYTHONHASHSEED``), which would scatter the same peer to
    different shards across runs and break snapshot re-sharding; crc32 is
    deterministic everywhere and runs at C speed on the routing hot path.
    """
    return zlib.crc32(peer_id.encode("utf-8"))


class ShardRouter:
    """Maps subject-ids to shard indices; strategies subclass :meth:`shard_of`."""

    #: Registry name of the routing strategy.
    name: str = "router"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise TrustModelError(f"num_shards must be >= 1, got {num_shards}")
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def shard_of(self, peer_id: str) -> int:
        """Home shard index of ``peer_id`` in ``[0, num_shards)``."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name}({self._num_shards})"


class HashShardRouter(ShardRouter):
    """Uniform assignment by routing key modulo the shard count."""

    name = "hash"

    def shard_of(self, peer_id: str) -> int:
        return shard_key(peer_id) % self._num_shards


class RangeShardRouter(ShardRouter):
    """Contiguous-range assignment: shard ``i`` owns key interval
    ``[i * 2^32 / N, (i + 1) * 2^32 / N)`` — the P-Grid-style split of the
    key space into equal-width, contiguous ranges."""

    name = "range"

    def shard_of(self, peer_id: str) -> int:
        return (shard_key(peer_id) * self._num_shards) >> _KEY_BITS


_ROUTER_CLASSES = {cls.name: cls for cls in (HashShardRouter, RangeShardRouter)}


def create_router(name: str, num_shards: int) -> ShardRouter:
    """Instantiate a routing strategy by name."""
    router_class = _ROUTER_CLASSES.get(name)
    if router_class is None:
        raise TrustModelError(
            f"unknown shard router {name!r}; registered: {ROUTER_NAMES}"
        )
    return router_class(num_shards)


#: Per-subject row keys of the row-partitioned backends, used to re-shard a
#: snapshot into a different shard count.  Keys not listed here (``prior``,
#: ``half_life``, …) are per-backend configuration copied from shard 0.
_ROW_KEYS = {
    "beta": ("alpha", "beta", "count"),
    "decay": ("alpha", "beta", "ref", "count"),
}
_ROW_DTYPES = {"alpha": np.float64, "beta": np.float64, "ref": np.float64,
               "count": np.int64}


class ShardedBackend(TrustBackend):
    """N inner trust backends behind one ``TrustBackend`` interface.

    Parameters
    ----------
    kind:
        Registered backend name instantiated per shard (``beta``,
        ``complaint``, ``decay``, or any :func:`register_backend` addition).
    num_shards:
        How many partitions to split the peer-id space into.
    router:
        Routing strategy: a name from :data:`ROUTER_NAMES` or a ready
        :class:`ShardRouter` (whose shard count must match).
    **shard_params:
        Constructor parameters forwarded to every inner backend.

    The complaint family gets special treatment in three places (global
    median reference, two-shard complaint delivery, complaint-log
    re-sharding); everything else is generic scatter/gather.  When the
    inner backends implement the ``ComplaintStore`` protocol the wrapper
    does too, so a sharded complaint backend can serve as a community's
    shared complaint store exactly like an unsharded one.
    """

    name = "sharded"

    def __init__(
        self,
        kind: str,
        num_shards: int,
        router: object = "hash",
        **shard_params: object,
    ):
        if num_shards < 1:
            raise TrustModelError(f"num_shards must be >= 1, got {num_shards}")
        if "shards" in shard_params:
            raise TrustModelError("nested sharding is not supported")
        if shard_params.get("store") is not None:
            # One store behind every shard would persist cross-shard
            # complaints twice (each delivery files into the same log) and
            # double-count them on any rebuild.
            raise TrustModelError(
                "sharded backends own their per-shard stores; "
                "a shared store cannot back multiple shards"
            )
        self._kind = kind
        if isinstance(router, ShardRouter):
            if router.num_shards != num_shards:
                raise TrustModelError(
                    f"router covers {router.num_shards} shards, "
                    f"backend has {num_shards}"
                )
            self._router = router
        else:
            self._router = create_router(str(router), num_shards)
        self._shards: Tuple[TrustBackend, ...] = tuple(
            create_backend(kind, **shard_params) for _ in range(num_shards)
        )
        self._complaint_family = isinstance(self._shards[0], ComplaintTrustBackend)
        # Routing is pure but hashing every id on every query adds up;
        # memoise per instance (the router never changes after construction).
        self._route_cache: Dict[str, int] = {}
        # Complaint family: a complaint is delivered to both involved peers'
        # home shards; restricting each shard's counters to its own peer-id
        # range keeps every shard's agent set and metric array exactly the
        # home partition (see ComplaintTrustBackend.restrict_rows), so the
        # global median pools per-shard arrays at numpy speed.  The median
        # is cached per write version.
        if self._complaint_family:
            self._restrict_shard_rows()
        self._writes = 0
        self._reference_cache: Tuple[int, float] = (-1, 0.0)

    def _restrict_shard_rows(self) -> None:
        for index, shard in enumerate(self._shards):
            shard.restrict_rows(  # type: ignore[attr-defined]
                lambda agent, home=index: self.shard_index_of(agent) == home
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """Registered name of the inner backends."""
        return self._kind

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def shards(self) -> Tuple[TrustBackend, ...]:
        """The inner backends, indexable by shard index."""
        return self._shards

    def describe(self) -> str:
        return f"sharded({len(self._shards)}x{self._kind}, {self._router.name})"

    def shard_index_of(self, peer_id: str) -> int:
        """Home shard index of ``peer_id`` (memoised routing)."""
        index = self._route_cache.get(peer_id)
        if index is None:
            index = self._router.shard_of(peer_id)
            self._route_cache[peer_id] = index
        return index

    def _home_shard(self, peer_id: str) -> TrustBackend:
        return self._shards[self.shard_index_of(peer_id)]

    def _require_complaint_family(self) -> ComplaintTrustBackend:
        if not self._complaint_family:
            raise TrustModelError(
                f"operation requires complaint-family shards, not {self._kind!r}"
            )
        return self._shards[0]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scatter helpers
    # ------------------------------------------------------------------
    def _route_many(self, subject_ids: Sequence[str]) -> np.ndarray:
        """Shard index per subject (memoised, one routing pass)."""
        cache = self._route_cache
        try:
            # Fast path: every id already routed — one C-level pass.
            return np.fromiter(
                map(cache.__getitem__, subject_ids),
                dtype=np.intp,
                count=len(subject_ids),
            )
        except KeyError:
            shard_of = self._router.shard_of
            for subject_id in subject_ids:
                if subject_id not in cache:
                    cache[subject_id] = shard_of(subject_id)
            return np.fromiter(
                map(cache.__getitem__, subject_ids),
                dtype=np.intp,
                count=len(subject_ids),
            )

    def _partition(
        self, subject_ids: Sequence[str]
    ) -> List[Tuple[int, np.ndarray, List[str]]]:
        """Group query positions by home shard (ascending shard index).

        Uses a stable argsort over the routed indices so the grouping runs
        at numpy speed; within a shard the caller's order is preserved,
        keeping per-subject accumulation sequences — and therefore float
        results — identical to the unsharded backend.
        """
        routed = self._route_many(subject_ids)
        order = np.argsort(routed, kind="stable")
        sorted_shards = routed[order]
        boundaries = np.flatnonzero(sorted_shards[1:] != sorted_shards[:-1]) + 1
        id_array = np.asarray(subject_ids, dtype=object)
        groups = []
        for positions in np.split(order, boundaries):
            index = int(routed[positions[0]])
            groups.append((index, positions, id_array[positions].tolist()))
        return groups

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        if not observations:
            return
        cache = self._route_cache
        cache_get = cache.get
        shard_of = self._router.shard_of
        buckets: List[Optional[List[TrustObservation]]] = [None] * len(self._shards)
        complaint_family = self._complaint_family
        for observation in observations:
            subject_id = observation.subject_id
            home = cache_get(subject_id)
            if home is None:
                home = cache[subject_id] = shard_of(subject_id)
            bucket = buckets[home]
            if bucket is None:
                bucket = buckets[home] = []
            bucket.append(observation)
            if (
                complaint_family
                and observation.complaint_filed
                and observation.observer_id != observation.subject_id
            ):
                # The complaint also increments the complainant's filed
                # count, whose authoritative row lives in *its* home shard.
                observer_id = observation.observer_id
                filer_home = cache_get(observer_id)
                if filer_home is None:
                    filer_home = cache[observer_id] = shard_of(observer_id)
                if filer_home != home:
                    filer_bucket = buckets[filer_home]
                    if filer_bucket is None:
                        filer_bucket = buckets[filer_home] = []
                    filer_bucket.append(observation)
        self._writes += 1
        for index, bucket in enumerate(buckets):
            if bucket is not None:
                self._shards[index].update_many(bucket)

    def record_complaints(self, complaints: Sequence[Complaint]) -> None:
        """Scatter ready-made complaints to the accused's and filer's shards."""
        self._require_complaint_family()
        buckets: Dict[int, List[Complaint]] = {}
        for complaint in complaints:
            home = self.shard_index_of(complaint.accused_id)
            buckets.setdefault(home, []).append(complaint)
            filer_home = self.shard_index_of(complaint.complainant_id)
            if filer_home != home:
                buckets.setdefault(filer_home, []).append(complaint)
        self._writes += 1
        for index in sorted(buckets):
            self._shards[index].record_complaints(buckets[index])  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Reads (scatter the query, gather into caller order)
    # ------------------------------------------------------------------
    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        out = np.zeros(len(subject_ids))
        if not len(subject_ids):
            return out
        if self._complaint_family:
            reference = self.reference_metric()
            for index, positions, subjects in self._partition(subject_ids):
                shard = self._shards[index]
                metrics = shard.metrics_for(subjects)  # type: ignore[attr-defined]
                out[positions] = shard.scores_from_metrics(  # type: ignore[attr-defined]
                    metrics, reference
                )
            return out
        for index, positions, subjects in self._partition(subject_ids):
            out[positions] = self._shards[index].scores_for(subjects, now=now)
        return out

    def trust_decisions(
        self,
        subject_ids: Sequence[str],
        threshold: float = 0.5,
        now: Optional[float] = None,
    ) -> np.ndarray:
        out = np.zeros(len(subject_ids), dtype=bool)
        if not len(subject_ids):
            return out
        if self._complaint_family:
            reference = self.reference_metric()
            for index, positions, subjects in self._partition(subject_ids):
                shard = self._shards[index]
                metrics = shard.metrics_for(subjects)  # type: ignore[attr-defined]
                out[positions] = shard.decisions_from_metrics(  # type: ignore[attr-defined]
                    metrics, reference
                )
            return out
        for index, positions, subjects in self._partition(subject_ids):
            out[positions] = self._shards[index].trust_decisions(
                subjects, threshold=threshold, now=now
            )
        return out

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        matrix, discounts = validate_witness_matrix(
            len(subject_ids),
            witness_belief_matrix,
            discount_vector,
            positive=not self._complaint_family,
        )
        out = np.zeros(len(subject_ids))
        if not len(subject_ids):
            return out
        if self._complaint_family:
            reference = self.reference_metric()
            for index, positions, subjects in self._partition(subject_ids):
                shard = self._shards[index]
                metrics = shard.witness_metrics_for(  # type: ignore[attr-defined]
                    subjects, matrix[:, positions, :], discounts
                )
                out[positions] = shard.scores_from_metrics(  # type: ignore[attr-defined]
                    metrics, reference
                )
            return out
        # The witness-belief matrix splits column-wise: each shard sees
        # every witness's reports about its own subjects only.
        for index, positions, subjects in self._partition(subject_ids):
            out[positions] = self._shards[index].aggregate_witness_reports(
                subjects, matrix[:, positions, :], discounts, now=now
            )
        return out

    def known_subjects(self) -> Tuple[str, ...]:
        # Complaint shards are row-filtered to their home range, so a plain
        # concatenation is the home partition for every backend family.
        return tuple(
            subject
            for shard in self._shards
            for subject in shard.known_subjects()
        )

    def reference_metric(self) -> float:
        """The *global* community median metric (complaint family only).

        Pools every shard's (home-filtered) in-store metric array into one
        median — the same multiset an unsharded backend computes its
        reference over, so the decision rule is unchanged by sharding.
        Cached per write version (one query batch recomputes it at most
        once).
        """
        self._require_complaint_family()
        version, cached = self._reference_cache
        if version == self._writes:
            return cached
        values = np.concatenate(
            [
                shard.metric_values_in_store()  # type: ignore[attr-defined]
                for shard in self._shards
            ]
        )
        reference = float(np.median(values)) if values.size else 0.0
        self._reference_cache = (self._writes, reference)
        return reference

    # ------------------------------------------------------------------
    # Scalar conveniences (delegate to the home shard)
    # ------------------------------------------------------------------
    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        return self._home_shard(subject_id).belief(subject_id, now=now)  # type: ignore[attr-defined]

    def observation_count(self, subject_id: str) -> int:
        return self._home_shard(subject_id).observation_count(subject_id)  # type: ignore[attr-defined]

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        return self.score(subject_id, now=now)

    def counts(self, agent_id: str) -> Tuple[int, int]:
        """``(received, filed)`` complaint counts from the agent's home shard."""
        self._require_complaint_family()
        return self._home_shard(agent_id).counts(agent_id)  # type: ignore[attr-defined]

    def trustworthy(self, subject_id: str) -> bool:
        return bool(self.trust_decisions((subject_id,))[0])

    # ------------------------------------------------------------------
    # ComplaintStore protocol (complaint family only) — a sharded backend
    # can be a community's shared complaint store, like its inner kind.
    # ------------------------------------------------------------------
    @property
    def tolerance_factor(self) -> float:
        return self._require_complaint_family().tolerance_factor

    @property
    def metric_mode(self) -> str:
        return self._require_complaint_family().metric_mode

    def file_complaint(self, complaint: Complaint) -> None:
        self.record_complaints((complaint,))

    def complaints_about(self, agent_id: str) -> Sequence[Complaint]:
        self._require_complaint_family()
        return self._home_shard(agent_id).complaints_about(agent_id)  # type: ignore[attr-defined]

    def complaints_by(self, agent_id: str) -> Sequence[Complaint]:
        self._require_complaint_family()
        return self._home_shard(agent_id).complaints_by(agent_id)  # type: ignore[attr-defined]

    def known_agents(self) -> Sequence[str]:
        self._require_complaint_family()
        return list(self.known_subjects())

    def all_complaints(self) -> Tuple[Complaint, ...]:
        """The global complaint log, each complaint exactly once.

        Cross-shard complaints are stored in two shards; collecting each
        shard's log filtered to *accused-home* complaints de-duplicates
        without comparing complaint values (identical duplicate filings are
        legitimate evidence and must survive).
        """
        self._require_complaint_family()
        complaints: List[Complaint] = []
        for index, shard in enumerate(self._shards):
            for complaint in shard.all_complaints():  # type: ignore[attr-defined]
                if self.shard_index_of(complaint.accused_id) == index:
                    complaints.append(complaint)
        return tuple(complaints)

    def __len__(self) -> int:
        # Version stamp for change-tracking caches (cross-shard complaints
        # count twice — monotonicity is what matters, not the total).
        return sum(len(shard) for shard in self._shards)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Persistence: per-shard manifest, re-shardable
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, np.ndarray]:
        """Serialise every shard independently under a ``shard-NNNN/`` prefix.

        The manifest (shard prefixes, router name, inner kind) is what a
        multi-worker deployment needs to checkpoint shards in parallel and
        to restore onto a different shard layout.
        """
        state: Dict[str, np.ndarray] = {
            "backend": np.array(self.name),
            "kind": np.array(self._kind),
            "router": np.array(self._router.name),
            "num_shards": np.array([len(self._shards)]),
        }
        prefixes: List[str] = []
        for index, shard in enumerate(self._shards):
            prefix = f"shard-{index:04d}"
            prefixes.append(prefix)
            for key, value in shard.snapshot().items():
                state[f"{prefix}/{key}"] = value
        state["manifest"] = np.array(prefixes, dtype=object)
        return state

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        self._check_snapshot_backend(state)
        kind = str(np.asarray(state["kind"]).item())
        if kind != self._kind:
            raise TrustModelError(
                f"snapshot holds {kind!r} shards, cannot restore into "
                f"{self._kind!r} shards"
            )
        prefixes = [str(prefix) for prefix in state["manifest"]]
        if len(prefixes) != int(state["num_shards"][0]):
            raise TrustModelError(
                f"snapshot manifest lists {len(prefixes)} shards but records "
                f"num_shards={int(state['num_shards'][0])}"
            )
        shard_states: List[Dict[str, np.ndarray]] = []
        for prefix in prefixes:
            marker = prefix + "/"
            shard_states.append(
                {
                    key[len(marker):]: value
                    for key, value in state.items()
                    if key.startswith(marker)
                }
            )
        self._route_cache.clear()
        self._writes += 1
        old_router_name = str(np.asarray(state["router"]).item())
        if (
            len(shard_states) == len(self._shards)
            and old_router_name == self._router.name
        ):
            for shard, shard_state in zip(self._shards, shard_states):
                shard.restore(shard_state)
            return
        self._restore_resharded(old_router_name, shard_states)

    def _restore_resharded(
        self, old_router_name: str, shard_states: List[Dict[str, np.ndarray]]
    ) -> None:
        """Redistribute a snapshot taken under a different shard layout."""
        old_router = create_router(old_router_name, len(shard_states))
        if self._complaint_family:
            self._reshard_complaints(old_router, shard_states)
            return
        row_keys = _ROW_KEYS.get(self._kind)
        if row_keys is None:
            raise TrustModelError(
                f"re-sharding is not supported for backend kind {self._kind!r}"
            )
        config_keys = [
            key
            for key in shard_states[0]
            if key not in row_keys and key != "peer_ids"
        ]
        names: List[List[str]] = [[] for _ in self._shards]
        rows: List[Dict[str, List[float]]] = [
            {key: [] for key in row_keys} for _ in self._shards
        ]
        for shard_state in shard_states:
            for row, peer_id in enumerate(shard_state["peer_ids"]):
                target = self.shard_index_of(str(peer_id))
                names[target].append(str(peer_id))
                for key in row_keys:
                    rows[target][key].append(shard_state[key][row])
        for index, shard in enumerate(self._shards):
            shard_state = {
                key: np.asarray(shard_states[0][key]) for key in config_keys
            }
            shard_state["peer_ids"] = np.array(names[index], dtype=object)
            for key in row_keys:
                shard_state[key] = np.array(
                    rows[index][key], dtype=_ROW_DTYPES[key]
                )
            shard.restore(shard_state)

    def _reshard_complaints(
        self, old_router: ShardRouter, shard_states: List[Dict[str, np.ndarray]]
    ) -> None:
        """Re-file the de-duplicated global complaint log onto the new layout."""
        complaints: List[Complaint] = []
        for index, shard_state in enumerate(shard_states):
            for complainant, accused, timestamp in zip(
                shard_state["complainants"],
                shard_state["accused"],
                shard_state["timestamps"],
            ):
                if old_router.shard_of(str(accused)) == index:
                    complaints.append(
                        Complaint(
                            complainant_id=str(complainant),
                            accused_id=str(accused),
                            timestamp=float(timestamp),
                        )
                    )
        tolerance_factor, trust_scale = (
            float(value) for value in shard_states[0]["config"]
        )
        metric_mode = str(np.asarray(shard_states[0]["metric_mode"]).item())
        self._shards = tuple(
            ComplaintTrustBackend(
                tolerance_factor=tolerance_factor,
                trust_scale=trust_scale,
                metric_mode=metric_mode,
            )
            for _ in self._shards
        )
        self._restrict_shard_rows()
        self.record_complaints(complaints)
