"""Evidence about past behaviour: observations and complaints.

Trust learning consumes two kinds of first-hand evidence produced by the
reputation management layer:

* :class:`Observation` — a graded record of one interaction ("peer ``q``
  behaved honestly / dishonestly towards me at time ``t``"), used by the
  Bayesian (beta) trust model of Mui et al. (2002), and
* :class:`Complaint` — the purely negative evidence unit of the
  complaint-based model of Aberer & Despotovic (CIKM 2001): a peer files a
  complaint about a partner after a bad interaction, and the *absence* of
  complaints is interpreted as good behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.exceptions import TrustModelError

__all__ = ["InteractionOutcome", "Observation", "Complaint", "EvidenceLog"]


class InteractionOutcome(enum.Enum):
    """Binary judgement of a partner's behaviour in one interaction."""

    HONEST = "honest"
    DISHONEST = "dishonest"

    @property
    def is_honest(self) -> bool:
        return self is InteractionOutcome.HONEST


@dataclass(frozen=True)
class Observation:
    """A first-hand observation of a partner's behaviour.

    Attributes
    ----------
    observer_id:
        Peer that made the observation.
    subject_id:
        Peer whose behaviour was observed.
    outcome:
        Whether the subject behaved honestly.
    timestamp:
        Simulation time of the interaction (used for evidence decay).
    weight:
        Importance of the observation, e.g. the monetary value at stake.
    """

    observer_id: str
    subject_id: str
    outcome: InteractionOutcome
    timestamp: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.observer_id or not self.subject_id:
            raise TrustModelError("observer_id and subject_id must be non-empty")
        if self.weight <= 0:
            raise TrustModelError(f"weight must be positive, got {self.weight}")

    @property
    def is_honest(self) -> bool:
        return self.outcome.is_honest

    @classmethod
    def honest(
        cls, observer_id: str, subject_id: str, timestamp: float = 0.0, weight: float = 1.0
    ) -> "Observation":
        return cls(observer_id, subject_id, InteractionOutcome.HONEST, timestamp, weight)

    @classmethod
    def dishonest(
        cls, observer_id: str, subject_id: str, timestamp: float = 0.0, weight: float = 1.0
    ) -> "Observation":
        return cls(
            observer_id, subject_id, InteractionOutcome.DISHONEST, timestamp, weight
        )


@dataclass(frozen=True)
class Complaint:
    """A complaint filed by one peer about another (negative evidence only)."""

    complainant_id: str
    accused_id: str
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.complainant_id or not self.accused_id:
            raise TrustModelError("complainant_id and accused_id must be non-empty")
        if self.complainant_id == self.accused_id:
            raise TrustModelError("a peer cannot file a complaint about itself")


class EvidenceLog:
    """Append-only, queryable log of observations held by one peer."""

    def __init__(self) -> None:
        self._observations: List[Observation] = []

    def record(self, observation: Observation) -> None:
        """Append an observation to the log."""
        self._observations.append(observation)

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self):
        return iter(self._observations)

    def about(self, subject_id: str) -> Tuple[Observation, ...]:
        """All observations about the given subject, oldest first."""
        return tuple(
            observation
            for observation in self._observations
            if observation.subject_id == subject_id
        )

    def by(self, observer_id: str) -> Tuple[Observation, ...]:
        """All observations made by the given observer, oldest first."""
        return tuple(
            observation
            for observation in self._observations
            if observation.observer_id == observer_id
        )

    def subjects(self) -> Tuple[str, ...]:
        """Distinct subjects appearing in the log, in first-seen order."""
        seen: List[str] = []
        for observation in self._observations:
            if observation.subject_id not in seen:
                seen.append(observation.subject_id)
        return tuple(seen)

    def counts(self, subject_id: str) -> Tuple[int, int]:
        """Return ``(honest, dishonest)`` observation counts for a subject."""
        honest = 0
        dishonest = 0
        for observation in self.about(subject_id):
            if observation.is_honest:
                honest += 1
            else:
                dishonest += 1
        return honest, dishonest

    def since(self, timestamp: float) -> Tuple[Observation, ...]:
        """Observations with ``timestamp`` greater than or equal to the bound."""
        return tuple(
            observation
            for observation in self._observations
            if observation.timestamp >= timestamp
        )

    def extend(self, observations: Iterable[Observation]) -> None:
        """Append many observations at once."""
        for observation in observations:
            self.record(observation)
