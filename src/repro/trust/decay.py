"""Time decay of trust evidence.

Old evidence should matter less than recent evidence: peers change behaviour,
and a reputation system that never forgets punishes (or rewards) forever.
Decay models map the age of an observation to a multiplicative weight in
``[0, 1]`` that the trust models apply before aggregating.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.exceptions import TrustModelError

__all__ = ["DecayModel", "NoDecay", "ExponentialDecay", "SlidingWindowDecay"]


class DecayModel(abc.ABC):
    """Maps the age of a piece of evidence to a weight in ``[0, 1]``."""

    @abc.abstractmethod
    def weight(self, age: float) -> float:
        """Weight of evidence that is ``age`` time units old (age >= 0)."""

    def weight_at(self, event_time: float, now: float) -> float:
        """Convenience: weight of evidence recorded at ``event_time``."""
        age = max(0.0, now - event_time)
        return self.weight(age)


class NoDecay(DecayModel):
    """Evidence never loses weight."""

    def weight(self, age: float) -> float:
        if age < 0:
            raise TrustModelError(f"age must be >= 0, got {age}")
        return 1.0


@dataclass
class ExponentialDecay(DecayModel):
    """Exponential forgetting with a configurable half life."""

    half_life: float = 100.0

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise TrustModelError(f"half_life must be > 0, got {self.half_life}")

    def weight(self, age: float) -> float:
        if age < 0:
            raise TrustModelError(f"age must be >= 0, got {age}")
        return math.pow(0.5, age / self.half_life)


@dataclass
class SlidingWindowDecay(DecayModel):
    """Evidence counts fully inside a window and not at all outside it."""

    window: float = 1000.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise TrustModelError(f"window must be > 0, got {self.window}")

    def weight(self, age: float) -> float:
        if age < 0:
            raise TrustModelError(f"age must be >= 0, got {age}")
        return 1.0 if age <= self.window else 0.0
