"""Pluggable trust backends: one batched data path for all trust computation.

The paper's reference model (Figure 1) feeds interaction outcomes and witness
reports into a *trust computation* module whose estimates the decision layer
consumes.  Historically every consumer of this library hand-wired one of the
scalar models (:class:`~repro.trust.beta.BetaTrustModel`,
:class:`~repro.trust.complaint.ComplaintTrustModel`) and pushed evidence in
one observation at a time.  This module unifies the three trust computation
schemes behind a single :class:`TrustBackend` interface with **batch**
methods:

* :meth:`TrustBackend.update_many` ingests a whole batch of
  :class:`TrustObservation` records at once,
* :meth:`TrustBackend.scores_for` answers a whole batch of trust queries as a
  numpy vector, and
* :meth:`TrustBackend.aggregate_witness_reports` folds a whole witness-belief
  matrix (second-hand evidence, discounted per witness) into the backend's
  direct evidence in one vectorized pass — the evidence-plane query path that
  replaces merging scalar beliefs witness by witness,

all backed by contiguous numpy arrays indexed through an interned peer-id
table instead of per-peer dict-of-list lookups.  Long runs can checkpoint a
backend with :meth:`TrustBackend.snapshot` (a dict of numpy arrays including
the interned peer-id table) and resume via :meth:`TrustBackend.restore`.  The simulation layer queues
observations during a tick and flushes them in one ``update_many`` call; the
decision layer reads whole score vectors for candidate partners.

Three backends are provided and discoverable through a small registry
(mirroring the scenario registry in :mod:`repro.workloads.registry`):

``beta``
    Bayesian beta-Bernoulli posterior per subject (Mui et al., HICSS 2002) —
    the vectorized equivalent of :class:`~repro.trust.beta.BetaTrustModel`
    without decay.
``complaint``
    The complaint-based P-Grid scheme of Aberer & Despotovic (CIKM 2001):
    complaints received × complaints filed against a community median
    reference.  Implements the :class:`~repro.trust.complaint.ComplaintStore`
    protocol so it can *be* the community's shared complaint store (the fast
    path) or wrap an existing store (compatibility path).
``decay``
    Exponentially decay-weighted beta evidence with O(1) online updates.
    Mathematically identical to ``BetaTrustModel`` with
    :class:`~repro.trust.decay.ExponentialDecay`, but it maintains running
    decayed sums instead of rescanning the observation log at query time.

Every backend agrees with its scalar reference implementation on identical
observation streams (see ``tests/trust/test_backend.py``), which is the
regression guard for this refactor.  One deliberate exception: the ``decay``
backend queried with ``now=None`` evaluates at its newest-evidence reference
time, whereas the scalar model ignored its decay model entirely when no
query time was supplied — always-decaying is the behaviour a decay model is
configured for; pass an explicit ``now`` where the distinction matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import TrustModelError
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.trust import storage
from repro.trust.aggregation import (
    SparseWitnessMatrix,
    WitnessReport,
    combine_beta_evidence,
    combine_beta_evidence_matrix,
    validate_witness_matrix,
    witness_report_sums,
)
from repro.trust.beta import BetaBelief, BetaTrustModel
from repro.trust.complaint import ComplaintStore, LocalComplaintStore
from repro.trust.evidence import Complaint, Observation
from repro.trust.storage import (
    gather,
    gather_f64,
    materialize,
    scatter_add,
    scatter_max,
    scatter_set,
)

__all__ = [
    "TrustObservation",
    "TrustBackend",
    "BetaTrustBackend",
    "DecayTrustBackend",
    "ComplaintTrustBackend",
    "ScalarBetaBackendAdapter",
    "BACKEND_NAMES",
    "register_backend",
    "create_backend",
    "backend_names",
]


@dataclass(frozen=True)
class TrustObservation:
    """One unit of trust evidence, consumable by every backend.

    Attributes
    ----------
    observer_id:
        Peer that made the observation (the complainant for complaint-style
        evidence).
    subject_id:
        Peer whose behaviour was observed.
    honest:
        Whether the subject behaved honestly.
    timestamp:
        Simulation time of the interaction (used by decaying backends).
    weight:
        Importance of the observation, e.g. the value at stake.
    files_complaint:
        Whether the observer files a complaint about the subject.  ``None``
        (the default) means "file exactly when the subject was dishonest";
        an explicit ``True`` with ``honest=True`` models the spurious
        complaints malicious peers use to pollute the complaint system.
    """

    observer_id: str
    subject_id: str
    honest: bool
    timestamp: float = 0.0
    weight: float = 1.0
    files_complaint: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.observer_id or not self.subject_id:
            raise TrustModelError("observer_id and subject_id must be non-empty")
        if self.weight <= 0:
            raise TrustModelError(f"weight must be positive, got {self.weight}")

    @property
    def complaint_filed(self) -> bool:
        """Whether this observation carries a complaint."""
        if self.files_complaint is not None:
            return self.files_complaint
        return not self.honest

    @classmethod
    def from_observation(cls, observation: Observation) -> "TrustObservation":
        """Convert a legacy :class:`~repro.trust.evidence.Observation`."""
        return cls(
            observer_id=observation.observer_id,
            subject_id=observation.subject_id,
            honest=observation.is_honest,
            timestamp=observation.timestamp,
            weight=observation.weight,
        )


class _PeerIndex:
    """Interns peer-id strings to dense integer indices."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def __len__(self) -> int:
        return len(self._names)

    def intern(self, name: str) -> int:
        index = self._ids.get(name)
        if index is None:
            index = len(self._names)
            self._ids[name] = index
            self._names.append(name)
        return index

    def intern_many(self, names: Sequence[str]) -> np.ndarray:
        """Row indices for ``names``, interning unseen ids (batch fast path).

        The common steady-state batch repeats already-known subjects, so the
        lookup is one C-level ``map`` over the id dict; only when that trips
        over an unseen id are the *unique* new names interned (one dict
        insert per distinct id, not per occurrence) before the single-pass
        lookup is retried.  First-occurrence order is preserved, so the
        index assignment is identical to interning one observation at a
        time.
        """
        getitem = self._ids.__getitem__
        count = len(names)
        try:
            return np.fromiter(map(getitem, names), dtype=np.int64, count=count)
        except KeyError:
            intern = self.intern
            for name in dict.fromkeys(names):
                intern(name)
            return np.fromiter(map(getitem, names), dtype=np.int64, count=count)

    def lookup_many(self, names: Sequence[str]) -> np.ndarray:
        """Row indices for ``names`` with ``-1`` marking unknown ids."""
        getitem = self._ids.__getitem__
        count = len(names)
        try:
            # Fast path: every id known — one C-level pass, no generator.
            return np.fromiter(map(getitem, names), dtype=np.int64, count=count)
        except KeyError:
            get = self._ids.get
            return np.fromiter(
                (-1 if (i := get(s)) is None else i for s in names),
                dtype=np.int64,
                count=count,
            )

    def get(self, name: str) -> Optional[int]:
        return self._ids.get(name)

    def name(self, index: int) -> str:
        return self._names[index]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "_PeerIndex":
        """Rebuild an index from a snapshot's name table (order-preserving)."""
        index = cls()
        for name in names:
            index.intern(str(name))
        return index


def _scores_via_cache(
    cache: storage.EvidenceArray,
    generations: storage.EvidenceArray,
    generation: int,
    rows: np.ndarray,
    prior_score: float,
    compute: Callable[[np.ndarray], np.ndarray],
) -> np.ndarray:
    """Answer a score query from a dirty-row cache, recomputing stale rows.

    ``generations[row] == generation`` marks a cache hit; anything else
    (zero for never-scored or freshly invalidated rows, an older generation
    after a decay backend's ``now`` changed) is recomputed through
    ``compute`` — which applies exactly the uncached per-row formula, so the
    cached answer is bit-identical to the uncached one.  Unknown subjects
    (``row == -1``) score the prior without touching the cache.
    """
    out = np.full(len(rows), prior_score)
    known = rows >= 0
    if not known.any():
        return out
    known_rows = rows[known]
    hits = gather(generations, known_rows)
    stale_mask = hits != generation
    if stale_mask.any():
        stale = np.unique(known_rows[stale_mask])
        scatter_set(cache, stale, compute(stale))
        scatter_set(generations, stale, generation)
    out[known] = gather(cache, known_rows)
    return out


class TrustBackend:
    """Interface all trust backends implement (the pluggable layer).

    Scalar convenience methods (:meth:`update`, :meth:`score`) are expressed
    in terms of the batch methods, so a backend only has to implement the
    vectorized path.
    """

    #: Registry name of the backend.
    name: str = "backend"

    # -- writes ---------------------------------------------------------
    def update(self, observation: TrustObservation) -> None:
        """Ingest a single observation (delegates to :meth:`update_many`)."""
        self.update_many((observation,))

    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        """Ingest a batch of observations in one vectorized pass."""
        raise NotImplementedError

    # -- reads ----------------------------------------------------------
    def score(self, subject_id: str, now: Optional[float] = None) -> float:
        """Trust estimate in ``[0, 1]`` for one subject."""
        return float(self.scores_for((subject_id,), now=now)[0])

    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        """Vector of trust estimates, aligned with ``subject_ids``."""
        raise NotImplementedError

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        """Trust estimates combining direct evidence with witness reports.

        ``witness_belief_matrix`` has shape ``(W, S, 2)``: witness ``w``'s
        report about subject ``s``.  For the beta-family backends a report is
        a ``(alpha, beta)`` posterior and a witness's evidence counts beyond
        the uniform prior are scaled by ``discount_vector[w]`` (the trust
        placed in that witness) before being added to the backend's own
        posterior — the vectorized equivalent of
        :func:`repro.trust.aggregation.combine_beta_evidence`.  For the
        complaint backend a report is a ``(received, filed)`` complaint-count
        pair and the discounts weight the per-witness count sums.  ``W`` may
        be zero, in which case the result equals :meth:`scores_for`.
        """
        raise NotImplementedError

    def trust_decisions(
        self,
        subject_ids: Sequence[str],
        threshold: float = 0.5,
        now: Optional[float] = None,
    ) -> np.ndarray:
        """Batched binary trust decisions, aligned with ``subject_ids``.

        The default gates :meth:`scores_for` at ``threshold``; the complaint
        backend overrides it with the Aberer–Despotovic median rule (which
        ignores ``threshold``).  Consumers use this instead of reaching into
        backend-specific decision methods so sharded/wrapped backends can
        gather decisions across partitions.
        """
        return self.scores_for(subject_ids, now=now) >= threshold

    def known_subjects(self) -> Tuple[str, ...]:
        """Subjects the backend holds evidence about."""
        raise NotImplementedError

    def row_count(self) -> int:
        """Number of resident per-subject rows.

        The sharded layer polls this as its load signal after every write
        batch, so backends override it with an O(1) answer instead of this
        default's full name-table materialisation.
        """
        return len(self.known_subjects())

    def scores_snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        """Trust estimates for every known subject."""
        subjects = self.known_subjects()
        if not subjects:
            return {}
        scores = self.scores_for(subjects, now=now)
        return {subject: float(score) for subject, score in zip(subjects, scores)}

    # -- persistence -----------------------------------------------------
    def snapshot(self) -> Dict[str, np.ndarray]:
        """Serialise the backend's state as a dict of numpy arrays.

        The snapshot round-trips through :meth:`restore`: it contains the
        evidence arrays *and* the interned peer-id table, so a restored
        backend answers every query exactly as the original did.  Keys are
        backend-specific; every snapshot carries a ``"backend"`` entry naming
        the producing backend so mismatched restores fail loudly.
        """
        raise NotImplementedError

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        """Replace the backend's state with a :meth:`snapshot` payload."""
        raise NotImplementedError

    def snapshot_items(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Stream the snapshot one ``(key, array)`` entry at a time.

        The streaming face of :meth:`snapshot`: entries are materialised
        lazily, so a consumer that serialises (or forwards) each entry and
        drops it holds at most one evidence column in memory — the
        checkpoint path for tables too large to copy wholesale.  Entry
        values are freshly materialised copies; consume the iterator before
        the next write batch.  ``dict(backend.snapshot_items())`` equals
        :meth:`snapshot`.
        """
        yield from self.snapshot().items()

    def restore_items(
        self, items: Iterable[Tuple[str, np.ndarray]]
    ) -> None:
        """Restore from a stream of :meth:`snapshot_items` entries.

        The base implementation materialises the stream; layered backends
        (the sharded wrapper) override it to restore partition by
        partition without ever holding the full manifest.
        """
        self.restore(dict(items))

    def _check_snapshot_backend(self, state: Dict[str, np.ndarray]) -> None:
        recorded = state.get("backend")
        if recorded is None or str(np.asarray(recorded).item()) != self.name:
            raise TrustModelError(
                f"snapshot was taken by backend {recorded!r}, "
                f"cannot restore into {self.name!r}"
            )

    def describe(self) -> str:
        return self.name

    # -- observability ---------------------------------------------------
    #: Telemetry registry the backend reports through.  The shared null
    #: registry is a class attribute, so unbound backends pay one attribute
    #: lookup and a false ``enabled`` check — nothing else.
    telemetry = NULL_REGISTRY

    #: Hot-path metric names, precomputed once per instance on first use so
    #: instrumented batches never build strings per call (TEL001).
    _metric_names: Optional[Tuple[str, str, str, str]] = None

    def bind_telemetry(self, registry: MetricsRegistry) -> None:
        """Route this backend's hot-path metrics through ``registry``."""
        self.telemetry = registry

    def _bound_metric_names(self) -> Tuple[str, str, str, str]:
        names = self._metric_names
        if names is None:
            prefix = "backend." + self.name
            names = self._metric_names = (
                prefix + ".update_batches",
                prefix + ".update_batch_size",
                prefix + ".score_queries",
                prefix + ".score_query_size",
            )
        return names

    def _record_update(self, units: int) -> None:
        """Tally one ``update_many`` batch (size histogram + call count)."""
        telemetry = self.telemetry
        if telemetry.enabled:
            names = self._bound_metric_names()
            telemetry.count(names[0])
            telemetry.observe(names[1], units)

    def _record_query(self, units: int) -> None:
        """Tally one ``scores_for`` query (size histogram + call count)."""
        telemetry = self.telemetry
        if telemetry.enabled:
            names = self._bound_metric_names()
            telemetry.count(names[2])
            telemetry.observe(names[3], units)

    def describe_config(self) -> str:
        """The full effective configuration as one canonical line.

        Reports kind, sharding, router, rebalance, storage layout, score
        cache, worker placement, and recovery — the single source the run
        summary prints instead of re-deriving the line from CLI flags.
        Layered backends (sharded, worker-hosted) override
        :meth:`_config_parts` to fill in their placement.
        """
        return ", ".join(self._config_parts())

    def _config_parts(self) -> List[str]:
        def flag(value: bool) -> str:
            return "on" if value else "off"

        return [
            self.name,
            "unsharded",
            "rebalance off",
            "compact " + flag(bool(getattr(self, "compact", False))),
            "cache-scores " + flag(bool(getattr(self, "_cache_scores", True))),
            "workers 0",
            "recovery off",
        ]


class BetaTrustBackend(TrustBackend):
    """Vectorized beta-Bernoulli trust (no decay).

    Maintains per-subject evidence pseudo-counts in two contiguous float
    arrays; the posterior mean ``(prior_alpha + a) / (prior + a + b)`` is the
    trust estimate.  Equivalent to
    :class:`~repro.trust.beta.BetaTrustModel` without a decay model, but
    updates and queries are O(batch) numpy operations instead of per-peer
    list appends and rescans.

    ``compact=True`` switches the evidence columns to the memory-bounded
    layout (float32 pseudo-counts, int32 observation counts, chunked growth
    that never copies the table; see :mod:`repro.trust.storage`).  Scores
    then carry float32 evidence rounding — documented tolerance 1e-6
    relative — while the default layout stays bit-for-bit the historical
    float64 path.  ``cache_scores=True`` (the default) answers repeated
    queries from a per-row score cache invalidated by ``update_many``
    (dirty-row invalidation); cached scores are bit-identical to uncached
    ones.
    """

    name = "beta"

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        compact: bool = False,
        cache_scores: bool = True,
    ) -> None:
        if prior_alpha <= 0 or prior_beta <= 0:
            raise TrustModelError("priors must be positive")
        self._prior_alpha = prior_alpha
        self._prior_beta = prior_beta
        self._compact = bool(compact)
        self._cache_scores = bool(cache_scores)
        # Compact-layout dtype *selection*: snapshots still widen to the
        # canonical flat float64/int64 manifest via the storage helpers.
        self._evidence_dtype = np.float32 if compact else np.float64  # repro: allow(DTYPE001) — compact layout selection, snapshots stay canonical
        self._count_dtype = np.int32 if compact else np.int64  # repro: allow(DTYPE001) — compact layout selection, snapshots stay canonical
        self._index = _PeerIndex()
        self._alpha = storage.make_array(self._evidence_dtype, compact)
        self._beta = storage.make_array(self._evidence_dtype, compact)
        self._count = storage.make_array(self._count_dtype, compact)
        self._reset_cache()

    def _reset_cache(self) -> None:
        self._score_cache = storage.make_array(np.float64, self._compact)
        self._cache_gen = storage.make_array(np.int64, self._compact)
        self._generation = 1
        self._prior_score = self._prior_alpha / (self._prior_alpha + self._prior_beta)

    @property
    def prior(self) -> BetaBelief:
        return BetaBelief(self._prior_alpha, self._prior_beta)

    @property
    def compact(self) -> bool:
        return self._compact

    def _ensure_capacity(self) -> None:
        size = len(self._index)
        self._alpha = storage.grow(self._alpha, size)
        self._beta = storage.grow(self._beta, size)
        self._count = storage.grow(self._count, size)
        self._score_cache = storage.grow(self._score_cache, size)
        self._cache_gen = storage.grow(self._cache_gen, size)

    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        if not observations:
            return
        self._record_update(len(observations))
        idx = self._index.intern_many([o.subject_id for o in observations])
        self._ensure_capacity()
        weights = np.fromiter(
            (o.weight for o in observations), dtype=np.float64, count=len(observations)
        )
        honest = np.fromiter(
            (o.honest for o in observations), dtype=bool, count=len(observations)
        )
        scatter_add(self._alpha, idx[honest], weights[honest])
        scatter_add(self._beta, idx[~honest], weights[~honest])
        scatter_add(self._count, idx, 1)
        scatter_set(self._cache_gen, np.unique(idx), 0)

    def beliefs_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior ``(alpha, beta)`` vectors aligned with ``subject_ids``."""
        rows = self._index.lookup_many(subject_ids)
        alpha = np.full(len(rows), self._prior_alpha)
        beta = np.full(len(rows), self._prior_beta)
        known = rows >= 0
        alpha[known] += gather_f64(self._alpha, rows[known])
        beta[known] += gather_f64(self._beta, rows[known])
        return alpha, beta

    def _row_scores(self, rows: np.ndarray, now: Optional[float]) -> np.ndarray:
        """Uncached per-row score formula (the dirty-row recompute kernel)."""
        alpha = self._prior_alpha + gather_f64(self._alpha, rows)
        beta = self._prior_beta + gather_f64(self._beta, rows)
        return alpha / (alpha + beta)

    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        self._record_query(len(subject_ids))
        if self._cache_scores:
            rows = self._index.lookup_many(subject_ids)
            return _scores_via_cache(
                self._score_cache,
                self._cache_gen,
                self._generation,
                rows,
                self._prior_score,
                lambda stale: self._row_scores(stale, now),
            )
        alpha, beta = self.beliefs_for(subject_ids, now=now)
        return alpha / (alpha + beta)

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        alpha, beta = self.beliefs_for(subject_ids, now=now)
        alpha, beta = combine_beta_evidence_matrix(
            alpha, beta, witness_belief_matrix, discount_vector
        )
        return alpha / (alpha + beta)

    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        """Posterior :class:`BetaBelief` (prior when the subject is unknown)."""
        row = self._index.get(subject_id)
        if row is None:
            return self.prior
        return BetaBelief(
            self._prior_alpha + float(storage.get_item(self._alpha, row)),
            self._prior_beta + float(storage.get_item(self._beta, row)),
        )

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        """Scalar-model-compatible alias of :meth:`score`."""
        return self.score(subject_id, now=now)

    def observation_count(self, subject_id: str) -> int:
        row = self._index.get(subject_id)
        return 0 if row is None else int(storage.get_item(self._count, row))

    def known_subjects(self) -> Tuple[str, ...]:
        return self._index.names()

    def row_count(self) -> int:
        return len(self._index)

    def snapshot_items(self) -> Iterator[Tuple[str, np.ndarray]]:
        # Evidence columns are emitted in the canonical float64/int64
        # snapshot dtypes regardless of storage layout, so compact and
        # default backends (and any shard mix of the two) share one
        # restorable, re-shardable format.
        size = len(self._index)
        yield "backend", np.array(self.name)
        yield "peer_ids", np.array(self._index.names(), dtype=object)
        yield "prior", np.array([self._prior_alpha, self._prior_beta])
        yield "alpha", materialize(self._alpha, size, np.float64)
        yield "beta", materialize(self._beta, size, np.float64)
        yield "count", materialize(self._count, size, np.int64)

    def snapshot(self) -> Dict[str, np.ndarray]:
        return dict(self.snapshot_items())

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        self._check_snapshot_backend(state)
        self._prior_alpha, self._prior_beta = (float(p) for p in state["prior"])
        self._index = _PeerIndex.from_names(state["peer_ids"])
        self._alpha = storage.storage_from(
            np.asarray(state["alpha"], dtype=np.float64),
            self._evidence_dtype,
            self._compact,
        )
        self._beta = storage.storage_from(
            np.asarray(state["beta"], dtype=np.float64),
            self._evidence_dtype,
            self._compact,
        )
        self._count = storage.storage_from(
            np.asarray(state["count"], dtype=np.int64),
            self._count_dtype,
            self._compact,
        )
        self._reset_cache()
        self._ensure_capacity()


class DecayTrustBackend(TrustBackend):
    """Beta trust with exponential evidence decay, updated online in O(1).

    Keeps, per subject, the honest/dishonest evidence sums *normalised at the
    newest observation's timestamp* (the subject's reference time).  Because
    exponential decay is multiplicative, the accumulators can be renormalised
    incrementally — no observation log and no rescan.  Scoring at ``now``
    applies one further decay factor ``0.5 ** ((now - ref) / half_life)``.

    Equivalent to ``BetaTrustModel(decay=ExponentialDecay(half_life))``
    queried at any ``now >= ref``; scoring with ``now=None`` evaluates at the
    reference time (the newest evidence).

    ``compact=True`` selects the memory-bounded layout (float32 evidence
    sums, int32 counts, chunked growth); the reference-time column stays
    float64 so long simulations never lose timestamp precision.
    ``cache_scores=True`` adds the dirty-row score cache; because decayed
    scores depend on the query time, the cache is additionally keyed by
    ``now`` — a query at a new ``now`` lazily recomputes only the rows it
    actually touches.
    """

    name = "decay"

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        half_life: float = 100.0,
        compact: bool = False,
        cache_scores: bool = True,
    ) -> None:
        if prior_alpha <= 0 or prior_beta <= 0:
            raise TrustModelError("priors must be positive")
        if half_life <= 0:
            raise TrustModelError(f"half_life must be > 0, got {half_life}")
        self._prior_alpha = prior_alpha
        self._prior_beta = prior_beta
        self._half_life = half_life
        self._compact = bool(compact)
        self._cache_scores = bool(cache_scores)
        # Compact-layout dtype *selection*: snapshots still widen to the
        # canonical flat float64/int64 manifest via the storage helpers.
        self._evidence_dtype = np.float32 if compact else np.float64  # repro: allow(DTYPE001) — compact layout selection, snapshots stay canonical
        self._count_dtype = np.int32 if compact else np.int64  # repro: allow(DTYPE001) — compact layout selection, snapshots stay canonical
        self._index = _PeerIndex()
        self._alpha = storage.make_array(self._evidence_dtype, compact)
        self._beta = storage.make_array(self._evidence_dtype, compact)
        self._ref = storage.make_array(np.float64, compact)
        self._count = storage.make_array(self._count_dtype, compact)
        self._reset_cache()

    def _reset_cache(self) -> None:
        self._score_cache = storage.make_array(np.float64, self._compact)
        self._cache_gen = storage.make_array(np.int64, self._compact)
        self._generation = 1
        self._cache_now: Optional[float] = None
        self._prior_score = self._prior_alpha / (self._prior_alpha + self._prior_beta)

    @property
    def half_life(self) -> float:
        return self._half_life

    @property
    def compact(self) -> bool:
        return self._compact

    def _ensure_capacity(self) -> None:
        size = len(self._index)
        self._alpha = storage.grow(self._alpha, size)
        self._beta = storage.grow(self._beta, size)
        self._ref = storage.grow(self._ref, size)
        self._count = storage.grow(self._count, size)
        self._score_cache = storage.grow(self._score_cache, size)
        self._cache_gen = storage.grow(self._cache_gen, size)

    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        if not observations:
            return
        self._record_update(len(observations))
        n = len(observations)
        idx = self._index.intern_many([o.subject_id for o in observations])
        self._ensure_capacity()
        weights = np.fromiter((o.weight for o in observations), dtype=np.float64, count=n)
        times = np.fromiter(
            (o.timestamp for o in observations), dtype=np.float64, count=n
        )
        honest = np.fromiter((o.honest for o in observations), dtype=bool, count=n)

        # Advance each touched subject's reference time to the newest
        # timestamp seen, renormalising the existing accumulators, then add
        # every observation decayed from its own timestamp to the new
        # reference.  The result is order-independent, so the whole batch
        # vectorizes.
        touched = np.unique(idx)
        old_ref = gather(self._ref, touched)
        scatter_max(self._ref, idx, times)
        factor = np.power(0.5, (gather(self._ref, touched) - old_ref) / self._half_life)
        storage.multiply_at(self._alpha, touched, factor)
        storage.multiply_at(self._beta, touched, factor)
        contribution = weights * np.power(
            0.5, (gather(self._ref, idx) - times) / self._half_life
        )
        scatter_add(self._alpha, idx[honest], contribution[honest])
        scatter_add(self._beta, idx[~honest], contribution[~honest])
        scatter_add(self._count, idx, 1)
        scatter_set(self._cache_gen, touched, 0)

    def _decay_to(self, rows: np.ndarray, now: Optional[float]) -> np.ndarray:
        if now is None:
            return np.ones(len(rows))
        age = np.maximum(0.0, now - gather(self._ref, rows))
        return np.power(0.5, age / self._half_life)

    def beliefs_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decayed posterior ``(alpha, beta)`` vectors for ``subject_ids``."""
        rows = self._index.lookup_many(subject_ids)
        alpha = np.full(len(rows), self._prior_alpha)
        beta = np.full(len(rows), self._prior_beta)
        known = rows >= 0
        if known.any():
            factor = self._decay_to(rows[known], now)
            alpha[known] += gather_f64(self._alpha, rows[known]) * factor
            beta[known] += gather_f64(self._beta, rows[known]) * factor
        return alpha, beta

    def _row_scores(self, rows: np.ndarray, now: Optional[float]) -> np.ndarray:
        """Uncached per-row score formula (the dirty-row recompute kernel)."""
        factor = self._decay_to(rows, now)
        alpha = self._prior_alpha + gather_f64(self._alpha, rows) * factor
        beta = self._prior_beta + gather_f64(self._beta, rows) * factor
        return alpha / (alpha + beta)

    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        self._record_query(len(subject_ids))
        if self._cache_scores:
            # Decayed scores are a function of (row evidence, now): a new
            # query time invalidates every cached entry at once by bumping
            # the generation; rows are then recomputed lazily as queried.
            if now != self._cache_now:
                self._cache_now = now
                self._generation += 1
            rows = self._index.lookup_many(subject_ids)
            return _scores_via_cache(
                self._score_cache,
                self._cache_gen,
                self._generation,
                rows,
                self._prior_score,
                lambda stale: self._row_scores(stale, now),
            )
        alpha, beta = self.beliefs_for(subject_ids, now=now)
        return alpha / (alpha + beta)

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        # Witness reports are taken at face value at their reported counts;
        # only the backend's *direct* evidence is decayed to ``now``.
        alpha, beta = self.beliefs_for(subject_ids, now=now)
        alpha, beta = combine_beta_evidence_matrix(
            alpha, beta, witness_belief_matrix, discount_vector
        )
        return alpha / (alpha + beta)

    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        row = self._index.get(subject_id)
        if row is None:
            return BetaBelief(self._prior_alpha, self._prior_beta)
        factor = float(self._decay_to(np.array([row]), now)[0])
        return BetaBelief(
            self._prior_alpha + float(storage.get_item(self._alpha, row)) * factor,
            self._prior_beta + float(storage.get_item(self._beta, row)) * factor,
        )

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        return self.score(subject_id, now=now)

    def observation_count(self, subject_id: str) -> int:
        row = self._index.get(subject_id)
        return 0 if row is None else int(storage.get_item(self._count, row))

    def known_subjects(self) -> Tuple[str, ...]:
        return self._index.names()

    def row_count(self) -> int:
        return len(self._index)

    def snapshot_items(self) -> Iterator[Tuple[str, np.ndarray]]:
        # Canonical float64/int64 snapshot dtypes regardless of layout; see
        # BetaTrustBackend.snapshot_items.
        size = len(self._index)
        yield "backend", np.array(self.name)
        yield "peer_ids", np.array(self._index.names(), dtype=object)
        yield "prior", np.array([self._prior_alpha, self._prior_beta])
        yield "half_life", np.array([self._half_life])
        yield "alpha", materialize(self._alpha, size, np.float64)
        yield "beta", materialize(self._beta, size, np.float64)
        yield "ref", materialize(self._ref, size, np.float64)
        yield "count", materialize(self._count, size, np.int64)

    def snapshot(self) -> Dict[str, np.ndarray]:
        return dict(self.snapshot_items())

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        self._check_snapshot_backend(state)
        self._prior_alpha, self._prior_beta = (float(p) for p in state["prior"])
        self._half_life = float(state["half_life"][0])
        self._index = _PeerIndex.from_names(state["peer_ids"])
        self._alpha = storage.storage_from(
            np.asarray(state["alpha"], dtype=np.float64),
            self._evidence_dtype,
            self._compact,
        )
        self._beta = storage.storage_from(
            np.asarray(state["beta"], dtype=np.float64),
            self._evidence_dtype,
            self._compact,
        )
        self._ref = storage.storage_from(
            np.asarray(state["ref"], dtype=np.float64), np.float64, self._compact
        )
        self._count = storage.storage_from(
            np.asarray(state["count"], dtype=np.int64),
            self._count_dtype,
            self._compact,
        )
        self._reset_cache()
        self._ensure_capacity()


class ComplaintTrustBackend(TrustBackend):
    """Vectorized complaint-based trust (Aberer & Despotovic, CIKM 2001).

    Maintains per-agent complaints-received / complaints-filed counters in
    numpy arrays and maps the configured decision metric to a ``[0, 1]``
    trust value exactly like
    :class:`~repro.trust.complaint.ComplaintTrustModel` (exponential decay
    around the community median reference).

    The backend implements the :class:`ComplaintStore` protocol, so it can be
    shared directly as a community's complaint store — the fast path, where
    every write updates the counters incrementally.  When constructed around
    an *existing* store it acts as a consistent cache: sized stores (those
    with ``__len__``) are change-tracked and the counters are rebuilt only
    when another writer touched the store; unsized stores (e.g. the
    P-Grid-backed distributed store) are re-counted on every scoring query,
    which matches the cost of the scalar model it replaces.
    """

    name = "complaint"

    METRIC_MODES = ("product", "received", "balanced")

    def __init__(
        self,
        store: Optional[ComplaintStore] = None,
        tolerance_factor: float = 4.0,
        trust_scale: float = 3.0,
        metric_mode: str = "product",
        compact: bool = False,
        cache_scores: bool = True,
    ) -> None:
        if tolerance_factor <= 0:
            raise TrustModelError(
                f"tolerance_factor must be > 0, got {tolerance_factor}"
            )
        if trust_scale <= 0:
            raise TrustModelError(f"trust_scale must be > 0, got {trust_scale}")
        if metric_mode not in self.METRIC_MODES:
            raise TrustModelError(
                f"metric_mode must be one of {self.METRIC_MODES}, got {metric_mode!r}"
            )
        self._store: ComplaintStore = store if store is not None else LocalComplaintStore()
        self._tolerance_factor = tolerance_factor
        self._trust_scale = trust_scale
        self._metric_mode = metric_mode
        self._row_filter: Optional[Callable[[str], bool]] = None
        self._index = _PeerIndex()
        # Complaint counts are small integers, exactly representable in
        # float32 up to 2**24, so the compact layout loses no precision here.
        self._compact = bool(compact)
        self._cache_scores = bool(cache_scores)
        self._count_dtype = np.float32 if compact else np.float64  # repro: allow(DTYPE001) — compact layout selection, snapshots stay canonical
        self._received = storage.make_array(self._count_dtype, compact)
        self._filed = storage.make_array(self._count_dtype, compact)
        self._in_store = storage.make_array(np.bool_, compact)
        self._cached_reference = 0.0
        self._reference_valid = False
        self._sized = hasattr(self._store, "__len__")
        self._synced_len = 0 if self._sized else None
        if self._sized and len(self._store) > 0:  # type: ignore[arg-type]
            self._synced_len = -1  # force initial rebuild

    # -- configuration ---------------------------------------------------
    @property
    def tolerance_factor(self) -> float:
        return self._tolerance_factor

    @property
    def metric_mode(self) -> str:
        return self._metric_mode

    @property
    def compact(self) -> bool:
        return self._compact

    def restrict_rows(self, row_filter: Callable[[str], bool]) -> None:
        """Maintain complaint counters only for agents passing ``row_filter``.

        A sharded deployment delivers each complaint to both involved peers'
        home shards (so every home row sees all its evidence), which would
        leave half-counted *foreign* rows behind; restricting each shard to
        its own peer-id range keeps the counter arrays, the in-store agent
        set and therefore the community-reference metric exactly the home
        partition.  The underlying store still persists every delivered
        complaint.  Must be configured before any evidence arrives.
        """
        if len(self._index) or (self._sized and len(self._store)):  # type: ignore[arg-type]
            raise TrustModelError(
                "restrict_rows must be configured before evidence arrives"
            )
        self._row_filter = row_filter

    # -- ComplaintStore protocol -----------------------------------------
    def file_complaint(self, complaint: Complaint) -> None:
        self._ingest((complaint,))

    def complaints_about(self, agent_id: str) -> Sequence[Complaint]:
        return self._store.complaints_about(agent_id)

    def complaints_by(self, agent_id: str) -> Sequence[Complaint]:
        return self._store.complaints_by(agent_id)

    def known_agents(self) -> Sequence[str]:
        return self._store.known_agents()

    def __len__(self) -> int:
        if self._sized:
            return len(self._store)  # type: ignore[arg-type]
        return len(self._store.known_agents())

    # -- writes ----------------------------------------------------------
    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        self._record_update(len(observations))
        complaints = [
            Complaint(
                complainant_id=o.observer_id,
                accused_id=o.subject_id,
                timestamp=o.timestamp,
            )
            for o in observations
            if o.complaint_filed and o.observer_id != o.subject_id
        ]
        if complaints:
            self._ingest(complaints)

    def record_complaints(self, complaints: Sequence[Complaint]) -> None:
        """Ingest a batch of ready-made complaints (the sharded scatter unit)."""
        if complaints:
            self._ingest(complaints)

    def _ingest(self, complaints: Sequence[Complaint]) -> None:
        """Persist a batch of complaints and keep the counters consistent."""
        if self._synced_len is None:
            # Unsized store: counters are recounted from the store on every
            # read anyway, so writes only persist (incrementing here would be
            # dead work and syncing would trigger a full remote recount per
            # write).
            for complaint in complaints:
                self._store.file_complaint(complaint)  # repro: allow(PERF001) — ComplaintStore has no batch ingest; this loop implements record_complaints
            return
        self._sync()
        for complaint in complaints:
            self._store.file_complaint(complaint)  # repro: allow(PERF001) — ComplaintStore has no batch ingest; this loop implements record_complaints
        row_filter = self._row_filter
        accused_ids = [c.accused_id for c in complaints]
        filed_ids = [c.complainant_id for c in complaints]
        if row_filter is not None:
            accused_ids = [agent for agent in accused_ids if row_filter(agent)]
            filed_ids = [agent for agent in filed_ids if row_filter(agent)]
        accused = self._index.intern_many(accused_ids)
        filed_by = self._index.intern_many(filed_ids)
        self._ensure_capacity()
        scatter_add(self._received, accused, 1.0)
        scatter_add(self._filed, filed_by, 1.0)
        scatter_set(self._in_store, accused, True)
        scatter_set(self._in_store, filed_by, True)
        self._synced_len += len(complaints)
        self._reference_valid = False

    def _ensure_capacity(self) -> None:
        size = len(self._index)
        self._received = storage.grow(self._received, size)
        self._filed = storage.grow(self._filed, size)
        self._in_store = storage.grow(self._in_store, size)

    # -- cache consistency ------------------------------------------------
    def _sync(self) -> None:
        """Rebuild the counters when the underlying store changed under us."""
        if self._synced_len is None:
            self._rebuild()
            return
        current = len(self._store)  # type: ignore[arg-type]
        if current != self._synced_len:
            self._rebuild()
            self._synced_len = current

    def _rebuild(self) -> None:
        agents = list(self._store.known_agents())
        if self._row_filter is not None:
            agents = [agent for agent in agents if self._row_filter(agent)]
        for agent_id in agents:
            self._index.intern(agent_id)
        self._ensure_capacity()
        storage.fill(self._received, 0.0)
        storage.fill(self._filed, 0.0)
        storage.fill(self._in_store, False)
        complaints: Optional[Iterable[Complaint]] = None
        if hasattr(self._store, "all_complaints"):
            complaints = self._store.all_complaints()  # type: ignore[attr-defined]
        if complaints is not None:
            intern = self._index.intern
            row_filter = self._row_filter
            for complaint in complaints:
                if row_filter is None or row_filter(complaint.accused_id):
                    accused = intern(complaint.accused_id)
                    self._ensure_capacity()
                    storage.add_item(self._received, accused, 1.0)
                if row_filter is None or row_filter(complaint.complainant_id):
                    complainant = intern(complaint.complainant_id)
                    self._ensure_capacity()
                    storage.add_item(self._filed, complainant, 1.0)
        else:
            for agent_id in agents:
                row = self._index.intern(agent_id)
                storage.set_item(
                    self._received,
                    row,
                    float(len(self._store.complaints_about(agent_id))),
                )
                storage.set_item(
                    self._filed, row, float(len(self._store.complaints_by(agent_id)))
                )
        for agent_id in agents:
            storage.set_item(self._in_store, self._index.intern(agent_id), True)
        self._reference_valid = False

    # -- assessment -------------------------------------------------------
    def _metric_of(self, received: np.ndarray, filed: np.ndarray) -> np.ndarray:
        """The configured decision metric over count vectors."""
        if self._metric_mode == "product":
            return received * filed
        if self._metric_mode == "received":
            return received.copy()
        return received * (1.0 + filed)

    def _metrics(self) -> np.ndarray:
        size = len(self._index)
        return self._metric_of(
            storage.prefix_view(self._received, size).astype(np.float64, copy=False),
            storage.prefix_view(self._filed, size).astype(np.float64, copy=False),
        )

    def _rows_for(self, subject_ids: Sequence[str]) -> np.ndarray:
        """Array rows for ``subject_ids`` (-1 marks unknown subjects)."""
        return self._index.lookup_many(subject_ids)

    def _scores_from_metrics(self, metrics: np.ndarray) -> np.ndarray:
        """Map decision metrics to [0, 1] trust against the community reference."""
        return self.scores_from_metrics(metrics, reference=self._reference())

    def scores_from_metrics(
        self, metrics: np.ndarray, reference: float
    ) -> np.ndarray:
        """Map metrics to trust values against an *explicit* reference.

        Sharded deployments compute the community median over every shard's
        home subjects and hand it back in, so per-shard scoring does not use
        a partition-local (and therefore wrong) reference.
        """
        scale = self._trust_scale * max(1.0, reference)
        return np.exp(-metrics / scale)

    def decisions_from_metrics(
        self, metrics: np.ndarray, reference: float
    ) -> np.ndarray:
        """The vectorized binary Aberer–Despotovic rule for explicit inputs."""
        if reference > 0:
            return metrics <= self._tolerance_factor * reference
        return metrics <= self._tolerance_factor

    def metrics_for(self, subject_ids: Sequence[str]) -> np.ndarray:
        """Per-subject decision metrics (0 for unknown subjects).

        Computed row-locally: only the queried rows are gathered and pushed
        through the metric, so a query against a million-row table costs
        O(query), not O(table).  The metric is elementwise, so this equals
        the historical compute-all-then-gather result bit for bit.
        """
        self._sync()
        rows = self._rows_for(subject_ids)
        subject_metrics = np.zeros(len(rows))
        known = rows >= 0
        if known.any():
            known_rows = rows[known]
            subject_metrics[known] = self._metric_of(
                gather_f64(self._received, known_rows),
                gather_f64(self._filed, known_rows),
            )
        return subject_metrics

    def metric_values_in_store(self) -> np.ndarray:
        """Metric values of every in-store agent (the median's input)."""
        self._sync()
        return self._metrics()[
            storage.prefix_view(self._in_store, len(self._index))
        ]

    def reference_metric(self) -> float:
        """The community's median complaint metric (0 when no data)."""
        self._sync()
        return self._reference()

    def _reference(self) -> float:
        # The median is the one whole-table pass on the query path; it only
        # changes when evidence does, so it is cached until the next write
        # (or store rebuild) invalidates it.
        if self._cache_scores and self._reference_valid:
            return self._cached_reference
        metrics = self._metrics()[
            storage.prefix_view(self._in_store, len(self._index))
        ]
        reference = 0.0 if metrics.size == 0 else float(np.median(metrics))
        self._cached_reference = reference
        self._reference_valid = True
        return reference

    def counts(self, agent_id: str) -> Tuple[int, int]:
        """``(received, filed)`` complaint counts for one agent."""
        self._sync()
        row = self._index.get(agent_id)
        if row is None:
            return (0, 0)
        return (
            int(storage.get_item(self._received, row)),
            int(storage.get_item(self._filed, row)),
        )

    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        self._record_query(len(subject_ids))
        return self._scores_from_metrics(self.metrics_for(subject_ids))

    def witness_metrics_for(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
    ) -> np.ndarray:
        """Decision metrics over own counts plus discounted witness counts."""
        matrix, discounts = validate_witness_matrix(
            len(subject_ids), witness_belief_matrix, discount_vector, positive=False
        )
        self._sync()
        rows = self._rows_for(subject_ids)
        received = np.zeros(len(rows))
        filed = np.zeros(len(rows))
        known = rows >= 0
        received[known] = gather_f64(self._received, rows[known])
        filed[known] = gather_f64(self._filed, rows[known])
        if matrix.shape[0] > 0:
            reported = witness_report_sums(matrix, discounts)
            received = received + reported[:, 0]
            filed = filed + reported[:, 1]
        return self._metric_of(received, filed)

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        """Trust from witness-reported complaint counts, discounted per witness.

        Each witness reports ``(received, filed)`` complaint counts about
        every queried subject (the data a replica of the distributed
        complaint store would hand back).  The aggregate is the backend's
        *own* counters plus the discount-scaled sum of the reports —
        complaints are purely negative evidence, so trusted reports can only
        add to the count while a distrusted (or zero-trust) witness
        contributes nothing, and no report can whitewash complaints the
        backend already holds.  The aggregated counts then pass through the
        same metric → ``exp`` mapping as :meth:`scores_for`, against the
        backend's current community reference.  With no reports the query
        equals :meth:`scores_for`.
        """
        metrics = self.witness_metrics_for(
            subject_ids, witness_belief_matrix, discount_vector
        )
        return self._scores_from_metrics(metrics)

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        return self.score(subject_id, now=now)

    def trust_decisions(
        self,
        subject_ids: Sequence[str],
        threshold: float = 0.5,
        now: Optional[float] = None,
    ) -> np.ndarray:
        """Batched binary decisions against the community median.

        ``threshold`` is ignored: the complaint scheme's rule is relative to
        the median metric, not an absolute trust level.
        """
        metrics = self.metrics_for(subject_ids)
        return self.decisions_from_metrics(metrics, self._reference())

    def trustworthy(self, subject_id: str) -> bool:
        """The binary Aberer–Despotovic decision against the community median."""
        return bool(self.trust_decisions((subject_id,))[0])

    def known_subjects(self) -> Tuple[str, ...]:
        self._sync()
        # The synced index/_in_store pair already holds the store's agent
        # set; answering from it avoids the store's O(complaints x agents)
        # rescan on the fast path.
        size = len(self._index)
        in_store = storage.prefix_view(self._in_store, size)
        names = self._index.names()
        return tuple(names[row] for row in range(size) if in_store[row])

    def row_count(self) -> int:
        self._sync()
        size = len(self._index)
        if isinstance(self._in_store, storage.ChunkedArray):
            return sum(
                int(np.count_nonzero(chunk))
                for _, chunk in self._in_store.iter_prefix(size)
            )
        return int(np.count_nonzero(self._in_store[:size]))

    def all_complaints(self) -> Tuple[Complaint, ...]:
        """Every complaint in the underlying store (requires enumeration)."""
        if not hasattr(self._store, "all_complaints"):
            raise TrustModelError(
                "complaint store does not expose all_complaints()"
            )
        return tuple(self._store.all_complaints())  # type: ignore[attr-defined]

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Counters plus the full complaint log (needed for the round-trip).

        Requires a store exposing ``all_complaints``: the local store, this
        backend's own fast path, and the P-Grid-backed
        :class:`~repro.reputation.store.DistributedReputationStore` (which
        enumerates its complaint log through ordinary P-Grid queries) all
        do, so distributed complaint state checkpoints through the same
        path.
        """
        return dict(self.snapshot_items())

    def snapshot_items(self) -> Iterator[Tuple[str, np.ndarray]]:
        if not hasattr(self._store, "all_complaints"):
            raise TrustModelError(
                "complaint store does not expose all_complaints(); "
                "snapshot it through its own persistence instead"
            )
        self._sync()
        size = len(self._index)
        yield "backend", np.array(self.name)
        yield "peer_ids", np.array(self._index.names(), dtype=object)
        yield "config", np.array([self._tolerance_factor, self._trust_scale])
        yield "metric_mode", np.array(self._metric_mode)
        yield "received", materialize(self._received, size, np.float64)
        yield "filed", materialize(self._filed, size, np.float64)
        yield "in_store", materialize(self._in_store, size, np.bool_)
        complaints = self.all_complaints()
        yield "complainants", np.array(
            [c.complainant_id for c in complaints], dtype=object
        )
        yield "accused", np.array([c.accused_id for c in complaints], dtype=object)
        yield "timestamps", np.array([c.timestamp for c in complaints])

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        """Restore counters and refill a private local complaint store.

        The restored backend owns a fresh :class:`LocalComplaintStore` with
        the snapshot's complaint log; callers sharing a store community-wide
        re-share the restored backend itself (it *is* a complaint store).
        """
        self._check_snapshot_backend(state)
        self._tolerance_factor, self._trust_scale = (
            float(v) for v in state["config"]
        )
        self._metric_mode = str(np.asarray(state["metric_mode"]).item())
        self._index = _PeerIndex.from_names(state["peer_ids"])
        self._received = storage.storage_from(
            np.asarray(state["received"], dtype=np.float64),
            self._count_dtype,
            self._compact,
        )
        self._filed = storage.storage_from(
            np.asarray(state["filed"], dtype=np.float64),
            self._count_dtype,
            self._compact,
        )
        self._in_store = storage.storage_from(
            np.asarray(state["in_store"], dtype=bool), np.bool_, self._compact
        )
        self._reference_valid = False
        store = LocalComplaintStore()
        for complainant, accused, timestamp in zip(
            state["complainants"], state["accused"], state["timestamps"]
        ):
            store.file_complaint(  # repro: allow(PERF001) — cold restore path re-filing the snapshot log into a fresh store
                Complaint(
                    complainant_id=str(complainant),
                    accused_id=str(accused),
                    timestamp=float(timestamp),
                )
            )
        self._store = store
        self._sized = True
        self._synced_len = len(store)
        self._ensure_capacity()


class ScalarBetaBackendAdapter(TrustBackend):
    """Adapts a scalar :class:`BetaTrustModel` to the backend interface.

    Used for decay models the vectorized backends cannot express online
    (e.g. :class:`~repro.trust.decay.SlidingWindowDecay`) and as the scalar
    reference in the batched-versus-scalar benchmark.  Every batch method
    degrades to a Python loop over the wrapped model.
    """

    name = "scalar-beta"

    def __init__(self, model: Optional[BetaTrustModel] = None) -> None:
        self._model = model if model is not None else BetaTrustModel()

    @property
    def model(self) -> BetaTrustModel:
        return self._model

    def update_many(self, observations: Sequence[TrustObservation]) -> None:
        for observation in observations:
            self._model.record_outcome(
                subject_id=observation.subject_id,
                honest=observation.honest,
                observer_id=observation.observer_id,
                timestamp=observation.timestamp,
                weight=observation.weight,
            )

    def scores_for(
        self, subject_ids: Sequence[str], now: Optional[float] = None
    ) -> np.ndarray:
        return np.fromiter(
            (self._model.trust(subject_id, now=now) for subject_id in subject_ids),
            dtype=np.float64,
            count=len(subject_ids),
        )

    def aggregate_witness_reports(
        self,
        subject_ids: Sequence[str],
        witness_belief_matrix: np.ndarray,
        discount_vector: np.ndarray,
        now: Optional[float] = None,
    ) -> np.ndarray:
        """Scalar reference: fold the matrix through ``combine_beta_evidence``.

        One Python-level merge per (witness, subject) pair — the pre-refactor
        data path, kept as the agreement oracle and benchmark baseline.
        """
        matrix, discounts = validate_witness_matrix(
            len(subject_ids), witness_belief_matrix, discount_vector
        )
        if isinstance(matrix, SparseWitnessMatrix):
            matrix = matrix.to_dense()
        scores = np.zeros(len(subject_ids))
        for column, subject_id in enumerate(subject_ids):
            reports = [
                WitnessReport(
                    witness_id=f"witness-{row}",
                    belief=BetaBelief(
                        float(matrix[row, column, 0]), float(matrix[row, column, 1])
                    ),
                    witness_trust=float(discounts[row]),
                )
                for row in range(matrix.shape[0])
            ]
            combined = combine_beta_evidence(
                self._model.belief(subject_id, now=now), reports  # repro: allow(PERF001) — scalar reference adapter; the batched backends are the fast path
            )
            scores[column] = combined.mean
        return scores

    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        return self._model.belief(subject_id, now=now)

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        return self._model.trust(subject_id, now=now)

    def observation_count(self, subject_id: str) -> int:
        return self._model.observation_count(subject_id)

    def known_subjects(self) -> Tuple[str, ...]:
        return self._model.known_subjects()


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
_BACKEND_FACTORIES: Dict[str, Callable[..., TrustBackend]] = {}

#: The built-in, simulation-ready backends (in registration order).
BACKEND_NAMES = ("beta", "complaint", "decay")


def register_backend(
    name: str, factory: Callable[..., TrustBackend], replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called with the keyword parameters handed to
    :func:`create_backend`.  Re-registering an existing name requires
    ``replace=True`` so typos do not silently shadow built-ins.
    """
    if not name:
        raise TrustModelError("backend name must be non-empty")
    if name in _BACKEND_FACTORIES and not replace:
        raise TrustModelError(f"backend {name!r} is already registered")
    _BACKEND_FACTORIES[name] = factory


def create_backend(name: str, **params: object) -> TrustBackend:
    """Instantiate a registered backend by name.

    ``shards=N`` (with an optional ``router="hash"|"range"|"ring"``) wraps
    the backend in a :class:`~repro.trust.sharding.ShardedBackend`
    partitioning the peer-id space across ``N`` inner backends of the
    requested kind; ``shards=1`` (the default) returns the plain backend.
    ``rebalance`` accepts a :class:`~repro.trust.sharding.RebalancePolicy`
    enabling live shard splits under load — with a policy the backend is
    sharded even at ``shards=1``, so a single-shard deployment can grow in
    place as its population does.

    ``workers=True`` hosts each shard in its own worker process instead
    (:class:`~repro.trust.workers.WorkerShardedBackend`): same interface,
    same scores, but writes and column-partitioned queries run in parallel
    across cores.  ``workers="loopback"`` keeps the identical message
    protocol on in-process threads (the deterministic test medium), and
    ``recovery=True`` journals writes so crashed workers can be healed
    (see :meth:`~repro.trust.workers.WorkerShardedBackend.heal_workers`).

    All remaining keyword parameters are forwarded to the backend factory
    (and, when sharded, to every shard).  The built-in backends accept
    ``compact=True`` for the memory-bounded evidence layout (narrow dtypes +
    chunked growth; see :mod:`repro.trust.storage`) and ``cache_scores``
    (default ``True``) for the dirty-row score cache.
    """
    shards = int(params.pop("shards", 1))  # type: ignore[arg-type]
    router = params.pop("router", "hash")
    rebalance = params.pop("rebalance", None)
    workers = params.pop("workers", False)
    recovery = bool(params.pop("recovery", False))
    if shards < 1:
        raise TrustModelError(f"shards must be >= 1, got {shards}")
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise TrustModelError(
            f"unknown trust backend {name!r}; registered: {backend_names()}"
        )
    if workers:
        from repro.trust.workers import WorkerShardedBackend

        transport = "loopback" if workers == "loopback" else "process"
        return WorkerShardedBackend(
            name,
            shards,
            router=router,
            rebalance=rebalance,
            transport=transport,
            recovery=recovery,
            **params,
        )
    if recovery:
        raise TrustModelError("recovery=True requires workers=True")
    if shards > 1 or rebalance is not None:
        from repro.trust.sharding import ShardedBackend

        return ShardedBackend(
            name, shards, router=router, rebalance=rebalance, **params
        )
    return factory(**params)


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    return tuple(_BACKEND_FACTORIES)


register_backend("beta", BetaTrustBackend)
register_backend("complaint", ComplaintTrustBackend)
register_backend("decay", DecayTrustBackend)
register_backend("scalar-beta", ScalarBetaBackendAdapter)
