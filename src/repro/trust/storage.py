"""Evidence-array storage for the trust backends: flat and chunked layouts.

The vectorized backends keep per-subject evidence in dense arrays indexed by
an interned peer table.  Two layouts are supported behind one small helper
vocabulary:

* **flat** — one contiguous ``numpy`` array per column, grown by amortised
  doubling (the original layout).  Every helper degrades to the exact numpy
  operation the backends used before this module existed, so flat-mode
  results are bit-for-bit unchanged.
* **chunked** — a :class:`ChunkedArray`: a list of fixed-size chunks, grown
  by *appending* zeroed chunks.  Growing never copies existing rows, so a
  million-row table expands in O(new chunk) instead of O(table) — and peak
  memory never holds the 2x copy the doubling layout needs mid-growth.
  Backends select it with ``compact=True``, usually together with narrower
  dtypes (float32 evidence, int32 counts).

The helpers (:func:`gather`, :func:`scatter_add`, …) dispatch on the array
type so backend code reads identically for both layouts.  Chunked operations
group indices by chunk with one stable sort and then run the same numpy
kernels per chunk; duplicate-index semantics (``np.add.at`` accumulation,
last-write-wins assignment) are preserved.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

__all__ = [
    "CHUNK_SIZE",
    "ChunkedArray",
    "EvidenceArray",
    "make_array",
    "storage_from",
    "grow",
    "gather",
    "gather_f64",
    "scatter_add",
    "scatter_max",
    "scatter_set",
    "multiply_at",
    "fill",
    "get_item",
    "set_item",
    "add_item",
    "materialize",
    "prefix_view",
    "prefix_chunks",
]

#: Default chunk length (entries, not bytes).  64Ki rows keeps per-chunk
#: kernels comfortably inside cache while a million-row table needs only
#: ~16 chunk allocations in total.
CHUNK_SIZE = 1 << 16


class ChunkedArray:
    """A 1-D array stored as equally sized chunks; growth appends, never copies.

    Only the operations the trust backends need are implemented; the helper
    functions below present them under the same names used for flat arrays.
    The logical length is the current *capacity* (all allocated entries,
    zero-initialised), mirroring how the flat layout over-allocates — the
    owning backend tracks how many rows are live via its peer index.
    """

    __slots__ = ("_chunks", "_dtype", "_chunk_size", "_shift", "_mask")

    def __init__(self, dtype: np.dtype, chunk_size: int = CHUNK_SIZE):
        if chunk_size < 1 or chunk_size & (chunk_size - 1):
            raise ValueError(f"chunk_size must be a power of two, got {chunk_size}")
        self._chunks: List[np.ndarray] = []
        self._dtype = np.dtype(dtype)
        self._chunk_size = chunk_size
        self._shift = chunk_size.bit_length() - 1
        self._mask = chunk_size - 1

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    def __len__(self) -> int:
        return len(self._chunks) * self._chunk_size

    def nbytes(self) -> int:
        return sum(chunk.nbytes for chunk in self._chunks)

    def ensure(self, size: int) -> None:
        """Grow capacity to at least ``size`` by appending zeroed chunks."""
        while len(self._chunks) * self._chunk_size < size:
            self._chunks.append(np.zeros(self._chunk_size, dtype=self._dtype))

    # -- grouped index operations ---------------------------------------
    def _split(self, idx: np.ndarray):
        """Yield ``(chunk, within-chunk positions, selector)`` groups.

        The selector is the boolean mask into ``idx`` for that chunk, so
        callers can align a value array with each group.  Single-chunk
        batches (the common case once a table stops growing) skip the
        grouping entirely.
        """
        chunk_of = idx >> self._shift
        within = idx & self._mask
        first = int(chunk_of[0])
        if int(chunk_of.max()) == first and int(chunk_of.min()) == first:
            yield self._chunks[first], within, slice(None)
            return
        for chunk_index in np.unique(chunk_of):
            mask = chunk_of == chunk_index
            yield self._chunks[chunk_index], within[mask], mask

    def gather(self, idx: np.ndarray) -> np.ndarray:
        out = np.empty(len(idx), dtype=self._dtype)
        if len(idx) == 0:
            return out
        for chunk, within, mask in self._split(idx):
            out[mask] = chunk[within]
        return out

    def scatter_add(self, idx: np.ndarray, values) -> None:
        if len(idx) == 0:
            return
        scalar = np.ndim(values) == 0
        for chunk, within, mask in self._split(idx):
            np.add.at(chunk, within, values if scalar else values[mask])

    def scatter_max(self, idx: np.ndarray, values) -> None:
        if len(idx) == 0:
            return
        scalar = np.ndim(values) == 0
        for chunk, within, mask in self._split(idx):
            np.maximum.at(chunk, within, values if scalar else values[mask])

    def scatter_set(self, idx: np.ndarray, values) -> None:
        if len(idx) == 0:
            return
        scalar = np.ndim(values) == 0
        for chunk, within, mask in self._split(idx):
            chunk[within] = values if scalar else values[mask]

    def multiply_at(self, idx: np.ndarray, factors) -> None:
        """In-place multiply at (unique) indices."""
        if len(idx) == 0:
            return
        scalar = np.ndim(factors) == 0
        for chunk, within, mask in self._split(idx):
            chunk[within] *= factors if scalar else factors[mask]

    # -- whole-array operations ------------------------------------------
    def fill(self, value) -> None:
        for chunk in self._chunks:
            chunk[:] = value

    def materialize(self, size: int, dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Contiguous copy of the first ``size`` entries, optionally cast."""
        out = np.empty(size, dtype=self._dtype if dtype is None else dtype)
        for start, chunk in self.iter_prefix(size):
            out[start : start + len(chunk)] = chunk
        return out

    def iter_prefix(self, size: int) -> Iterator:
        """Yield ``(start, chunk-view)`` pairs covering the first ``size`` rows.

        The views are zero-copy; consume them before mutating the array.
        """
        for index, chunk in enumerate(self._chunks):
            start = index * self._chunk_size
            if start >= size:
                return
            yield start, chunk[: min(self._chunk_size, size - start)]

    def assign_prefix(self, values: np.ndarray) -> None:
        """Overwrite the first ``len(values)`` entries (capacity must exist)."""
        for start, chunk in self.iter_prefix(len(values)):
            chunk[:] = values[start : start + len(chunk)]


EvidenceArray = Union[np.ndarray, ChunkedArray]


def make_array(dtype: np.dtype, chunked: bool, chunk_size: int = CHUNK_SIZE) -> EvidenceArray:
    """An empty evidence column in the requested layout."""
    if chunked:
        return ChunkedArray(dtype, chunk_size=chunk_size)
    return np.zeros(0, dtype=dtype)


def storage_from(
    values: np.ndarray, dtype: np.dtype, chunked: bool
) -> EvidenceArray:
    """An evidence column initialised from a snapshot array (cast to ``dtype``)."""
    values = np.asarray(values)
    array = make_array(dtype, chunked)
    array = grow(array, len(values))
    if isinstance(array, ChunkedArray):
        array.assign_prefix(values.astype(dtype, copy=False))
    else:
        array[: len(values)] = values
    return array


def grow(array: EvidenceArray, size: int) -> EvidenceArray:
    """Capacity of at least ``size``: amortised doubling (flat) or append (chunked)."""
    if isinstance(array, ChunkedArray):
        array.ensure(size)
        return array
    if size <= len(array):
        return array
    capacity = max(8, len(array))
    while capacity < size:
        capacity *= 2
    grown = np.zeros(capacity, dtype=array.dtype)
    grown[: len(array)] = array
    return grown


def gather(array: EvidenceArray, idx: np.ndarray) -> np.ndarray:
    if isinstance(array, ChunkedArray):
        return array.gather(idx)
    return array[idx]


def gather_f64(array: EvidenceArray, idx: np.ndarray) -> np.ndarray:
    """Gather upcast to float64 (no copy when the storage already is)."""
    out = gather(array, idx)
    if out.dtype == np.float64:
        return out
    return out.astype(np.float64)


def scatter_add(array: EvidenceArray, idx: np.ndarray, values) -> None:
    if isinstance(array, ChunkedArray):
        array.scatter_add(idx, values)
    else:
        np.add.at(array, idx, values)


def scatter_max(array: EvidenceArray, idx: np.ndarray, values) -> None:
    if isinstance(array, ChunkedArray):
        array.scatter_max(idx, values)
    else:
        np.maximum.at(array, idx, values)


def scatter_set(array: EvidenceArray, idx: np.ndarray, values) -> None:
    if isinstance(array, ChunkedArray):
        array.scatter_set(idx, values)
    else:
        array[idx] = values


def multiply_at(array: EvidenceArray, idx: np.ndarray, factors) -> None:
    """In-place multiply at indices (callers pass unique indices)."""
    if isinstance(array, ChunkedArray):
        array.multiply_at(idx, factors)
    else:
        array[idx] *= factors


def fill(array: EvidenceArray, value) -> None:
    if isinstance(array, ChunkedArray):
        array.fill(value)
    else:
        array[:] = value


def get_item(array: EvidenceArray, index: int):
    if isinstance(array, ChunkedArray):
        return array.gather(np.array([index], dtype=np.int64))[0]
    return array[index]


def set_item(array: EvidenceArray, index: int, value) -> None:
    if isinstance(array, ChunkedArray):
        array.scatter_set(np.array([index], dtype=np.int64), value)
    else:
        array[index] = value


def add_item(array: EvidenceArray, index: int, value) -> None:
    if isinstance(array, ChunkedArray):
        array.scatter_add(np.array([index], dtype=np.int64), value)
    else:
        array[index] += value


def materialize(
    array: EvidenceArray, size: int, dtype: Optional[np.dtype] = None
) -> np.ndarray:
    """Contiguous *copy* of the first ``size`` entries, optionally cast."""
    if isinstance(array, ChunkedArray):
        return array.materialize(size, dtype)
    return np.array(array[:size], dtype=array.dtype if dtype is None else dtype)


def prefix_view(array: EvidenceArray, size: int) -> np.ndarray:
    """The first ``size`` entries — a zero-copy view for flat arrays.

    Chunked arrays have no contiguous view and materialise a copy; prefer
    :func:`gather` over this on hot per-query paths.
    """
    if isinstance(array, ChunkedArray):
        return array.materialize(size)
    return array[:size]


def prefix_chunks(array: EvidenceArray, size: int) -> Iterator:
    """``(start, chunk-view)`` pairs over the first ``size`` entries, zero-copy."""
    if isinstance(array, ChunkedArray):
        yield from array.iter_prefix(size)
    elif size > 0:
        yield 0, array[:size]
