"""Bayesian (beta) trust model.

Implements the probabilistic trust estimation the paper assumes as its
"theoretically well-founded solution" (Mui, Mohtashemi & Halberstadt, HICSS
2002): each peer's honesty is modelled as a Bernoulli parameter ``theta``
with a Beta prior; first-hand observations update the posterior, whose mean
is used as the trust estimate (probability of honest behaviour in the next
interaction).

The model supports

* weighted observations (e.g. weighting by the value at stake),
* evidence decay through a :class:`~repro.trust.decay.DecayModel`,
* credible intervals (exact when :mod:`scipy` is available, otherwise a
  normal approximation), and
* merging of second-hand (witness) evidence with discounting, see
  :mod:`repro.trust.aggregation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import TrustModelError
from repro.trust.decay import DecayModel, NoDecay
from repro.trust.evidence import Observation

try:  # pragma: no cover - exercised implicitly depending on environment
    from scipy.stats import beta as _scipy_beta
except Exception:  # pragma: no cover
    _scipy_beta = None

__all__ = ["BetaBelief", "BetaTrustModel"]


@dataclass(frozen=True)
class BetaBelief:
    """A Beta(alpha, beta) posterior over a peer's honesty probability."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise TrustModelError(
                f"Beta parameters must be positive, got ({self.alpha}, {self.beta})"
            )

    @property
    def mean(self) -> float:
        """Posterior mean — the trust estimate."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def strength(self) -> float:
        """Total pseudo-count of evidence behind the belief."""
        return self.alpha + self.beta

    @property
    def variance(self) -> float:
        total = self.alpha + self.beta
        return (self.alpha * self.beta) / (total * total * (total + 1.0))

    def updated(self, honest: bool, weight: float = 1.0) -> "BetaBelief":
        """Posterior after observing one (possibly weighted) interaction."""
        if weight <= 0:
            raise TrustModelError(f"weight must be positive, got {weight}")
        if honest:
            return BetaBelief(self.alpha + weight, self.beta)
        return BetaBelief(self.alpha, self.beta + weight)

    def merged(self, other: "BetaBelief", discount: float = 1.0) -> "BetaBelief":
        """Combine with another belief's *evidence* (priors are not doubled).

        ``discount`` scales the other belief's evidence counts, which is the
        standard way of down-weighting second-hand reports by the trust put
        in the witness.
        """
        if not 0.0 <= discount <= 1.0:
            raise TrustModelError(f"discount must lie in [0, 1], got {discount}")
        return BetaBelief(
            self.alpha + discount * max(0.0, other.alpha - 1.0),
            self.beta + discount * max(0.0, other.beta - 1.0),
        )

    def credible_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Central credible interval for the honesty probability."""
        if not 0.0 < level < 1.0:
            raise TrustModelError(f"level must lie in (0, 1), got {level}")
        tail = (1.0 - level) / 2.0
        if _scipy_beta is not None:
            lower = float(_scipy_beta.ppf(tail, self.alpha, self.beta))
            upper = float(_scipy_beta.ppf(1.0 - tail, self.alpha, self.beta))
            return max(0.0, lower), min(1.0, upper)
        # Normal approximation fallback.
        z = _normal_quantile(1.0 - tail)
        spread = z * math.sqrt(self.variance)
        return max(0.0, self.mean - spread), min(1.0, self.mean + spread)


def _normal_quantile(p: float) -> float:
    """Acklam-style rational approximation of the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise TrustModelError(f"quantile probability must lie in (0, 1), got {p}")
    # Coefficients for the central region approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


class BetaTrustModel:
    """Per-subject Beta posteriors maintained by one peer.

    Parameters
    ----------
    prior_alpha, prior_beta:
        The prior pseudo-counts.  The default ``(1, 1)`` is the uniform
        prior, giving unknown peers a trust estimate of ``0.5``.
    decay:
        Optional evidence decay; when supplied, observation weights are
        multiplied by the decay weight of their age at query time.
    """

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        decay: Optional[DecayModel] = None,
    ):
        if prior_alpha <= 0 or prior_beta <= 0:
            raise TrustModelError("priors must be positive")
        self._prior_alpha = prior_alpha
        self._prior_beta = prior_beta
        self._decay: DecayModel = decay if decay is not None else NoDecay()
        self._observations: Dict[str, List[Observation]] = {}

    # ------------------------------------------------------------------
    # Evidence intake
    # ------------------------------------------------------------------
    def record(self, observation: Observation) -> None:
        """Record a first-hand observation."""
        self._observations.setdefault(observation.subject_id, []).append(observation)

    def record_outcome(
        self,
        subject_id: str,
        honest: bool,
        observer_id: str = "self",
        timestamp: float = 0.0,
        weight: float = 1.0,
    ) -> None:
        """Convenience wrapper building and recording an :class:`Observation`."""
        observation = (
            Observation.honest(observer_id, subject_id, timestamp, weight)
            if honest
            else Observation.dishonest(observer_id, subject_id, timestamp, weight)
        )
        self.record(observation)

    def extend(self, observations: Iterable[Observation]) -> None:
        for observation in observations:
            self.record(observation)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def prior(self) -> BetaBelief:
        return BetaBelief(self._prior_alpha, self._prior_beta)

    def known_subjects(self) -> Tuple[str, ...]:
        return tuple(self._observations.keys())

    def observation_count(self, subject_id: str) -> int:
        return len(self._observations.get(subject_id, []))

    def belief(self, subject_id: str, now: Optional[float] = None) -> BetaBelief:
        """The posterior belief about ``subject_id`` (prior if unknown)."""
        alpha = self._prior_alpha
        beta = self._prior_beta
        for observation in self._observations.get(subject_id, []):
            weight = observation.weight
            if now is not None:
                weight *= self._decay.weight_at(observation.timestamp, now)
            if weight <= 0.0:
                continue
            if observation.is_honest:
                alpha += weight
            else:
                beta += weight
        return BetaBelief(alpha, beta)

    def trust(self, subject_id: str, now: Optional[float] = None) -> float:
        """Trust estimate: posterior probability of honest behaviour."""
        return self.belief(subject_id, now).mean

    def credible_interval(
        self, subject_id: str, level: float = 0.95, now: Optional[float] = None
    ) -> Tuple[float, float]:
        return self.belief(subject_id, now).credible_interval(level)

    def trust_snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        """Trust estimates for every known subject."""
        return {
            subject_id: self.trust(subject_id, now)
            for subject_id in self._observations
        }
