"""Baseline exchange strategies the trust-aware approach is compared against."""

from repro.baselines.safe_only import SafeOnlyStrategy
from repro.baselines.strategies import (
    AlternatingStrategy,
    GoodsFirstStrategy,
    PaymentFirstStrategy,
)
from repro.baselines.trust_unaware import FixedExposureStrategy, OptimisticStrategy

__all__ = [
    "GoodsFirstStrategy",
    "PaymentFirstStrategy",
    "AlternatingStrategy",
    "SafeOnlyStrategy",
    "FixedExposureStrategy",
    "OptimisticStrategy",
]
