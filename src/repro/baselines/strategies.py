"""Naive exchange strategies used as comparison baselines.

These strategies ignore trust entirely and schedule the exchange by a fixed
rule.  They correspond to the two "extremes" the paper's introduction
describes (goods before money, money before goods) plus the common-sense
alternating schedule in between.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.exchange import ExchangeAction, ExchangeSequence
from repro.core.goods import GoodsBundle
from repro.core.numeric import EPSILON
from repro.marketplace.strategy import ExchangeStrategy, StrategyContext

__all__ = [
    "GoodsFirstStrategy",
    "PaymentFirstStrategy",
    "AlternatingStrategy",
]


class GoodsFirstStrategy(ExchangeStrategy):
    """Deliver every good first, collect the full payment at the end.

    The supplier carries the whole exposure: a dishonest consumer simply
    keeps the goods and never pays.
    """

    name = "goods-first"

    def plan(
        self,
        bundle: GoodsBundle,
        price: float,
        context: StrategyContext,
    ) -> Optional[ExchangeSequence]:
        if price < 0:
            return None
        actions: List[ExchangeAction] = [
            ExchangeAction.deliver(good) for good in bundle
        ]
        if price > EPSILON:
            actions.append(ExchangeAction.pay(price))
        return ExchangeSequence(bundle, price, actions)


class PaymentFirstStrategy(ExchangeStrategy):
    """Collect the full payment first, deliver every good afterwards.

    The consumer carries the whole exposure: a dishonest supplier keeps the
    money and never delivers.
    """

    name = "payment-first"

    def plan(
        self,
        bundle: GoodsBundle,
        price: float,
        context: StrategyContext,
    ) -> Optional[ExchangeSequence]:
        if price < 0:
            return None
        actions: List[ExchangeAction] = []
        if price > EPSILON:
            actions.append(ExchangeAction.pay(price))
        actions.extend(ExchangeAction.deliver(good) for good in bundle)
        return ExchangeSequence(bundle, price, actions)


class AlternatingStrategy(ExchangeStrategy):
    """Deliver one good, collect a proportional payment chunk, repeat.

    The payment after each delivery is proportional to the consumer value of
    the good just delivered (falling back to equal chunks for worthless
    bundles).  This splits the exposure between the two sides but pays no
    attention to whether the induced temptations are acceptable to anyone.
    """

    name = "alternating"

    def __init__(self, pay_before_delivery: bool = False):
        self._pay_before_delivery = pay_before_delivery

    def plan(
        self,
        bundle: GoodsBundle,
        price: float,
        context: StrategyContext,
    ) -> Optional[ExchangeSequence]:
        if price < 0:
            return None
        goods = list(bundle)
        total_value = bundle.total_consumer_value
        actions: List[ExchangeAction] = []
        paid_so_far = 0.0
        for index, good in enumerate(goods):
            is_last = index == len(goods) - 1
            if total_value > EPSILON:
                share = good.consumer_value / total_value
            else:
                share = 1.0 / len(goods)
            chunk = price - paid_so_far if is_last else price * share
            chunk = max(0.0, min(chunk, price - paid_so_far))
            if self._pay_before_delivery:
                if chunk > EPSILON:
                    actions.append(ExchangeAction.pay(chunk))
                    paid_so_far += chunk
                actions.append(ExchangeAction.deliver(good))
            else:
                actions.append(ExchangeAction.deliver(good))
                if chunk > EPSILON:
                    actions.append(ExchangeAction.pay(chunk))
                    paid_so_far += chunk
        remaining = price - paid_so_far
        if remaining > EPSILON:
            actions.append(ExchangeAction.pay(remaining))
        if not goods and price > EPSILON and not actions:
            actions.append(ExchangeAction.pay(price))
        return ExchangeSequence(bundle, price, actions)

    def describe(self) -> str:
        order = "pay-then-deliver" if self._pay_before_delivery else "deliver-then-pay"
        return f"{self.name}({order})"
