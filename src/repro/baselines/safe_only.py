"""The fully-safe-only baseline (Sandholm's original setting).

This strategy only trades when a schedule exists in which *no* temptation
ever exceeds the parties' reputation continuation values — i.e. the exchange
is self-enforcing for rational partners without anyone accepting trust-based
exposure.  It is the natural comparison point for the paper's contribution:
it never loses value to defectors, but it declines every trade whose
valuations do not admit a safe schedule.
"""

from __future__ import annotations

from typing import Optional

from repro.core.exchange import ExchangeSequence
from repro.core.goods import GoodsBundle
from repro.core.planner import PaymentPolicy, plan_exchange
from repro.core.safety import ExchangeRequirements
from repro.marketplace.strategy import ExchangeStrategy, StrategyContext

__all__ = ["SafeOnlyStrategy"]


class SafeOnlyStrategy(ExchangeStrategy):
    """Trade only when a fully safe schedule exists."""

    name = "safe-only"

    def __init__(
        self,
        use_reputation_continuation: bool = True,
        payment_policy: PaymentPolicy = PaymentPolicy.LAZY,
        strict: bool = False,
    ):
        self._use_reputation_continuation = use_reputation_continuation
        self._payment_policy = payment_policy
        self._strict = strict

    def plan(
        self,
        bundle: GoodsBundle,
        price: float,
        context: StrategyContext,
    ) -> Optional[ExchangeSequence]:
        if self._use_reputation_continuation:
            requirements = ExchangeRequirements(
                supplier_defection_penalty=context.supplier_defection_penalty,
                consumer_defection_penalty=context.consumer_defection_penalty,
                strict=self._strict,
            )
        else:
            requirements = (
                ExchangeRequirements.isolated_strict()
                if self._strict
                else ExchangeRequirements.fully_safe()
            )
        return plan_exchange(bundle, price, requirements, self._payment_policy)

    def describe(self) -> str:
        continuation = (
            "with-reputation" if self._use_reputation_continuation else "isolated"
        )
        return f"{self.name}({continuation})"
