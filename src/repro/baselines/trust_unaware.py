"""Trust-unaware exposure strategies.

These baselines use the same scheduling machinery as the trust-aware
approach but do not consult the trust estimates: they accept a *fixed*
exposure for everyone (or an unbounded one).  Comparing them against the
trust-aware strategy isolates the value of conditioning the accepted
exposure on the partner's reputation, which is the paper's contribution.
"""

from __future__ import annotations

from typing import Optional

from repro.core.exchange import ExchangeSequence
from repro.core.goods import GoodsBundle
from repro.core.planner import PaymentPolicy, plan_exchange
from repro.core.safety import ExchangeRequirements
from repro.exceptions import MarketplaceError
from repro.marketplace.strategy import ExchangeStrategy, StrategyContext

__all__ = ["FixedExposureStrategy", "OptimisticStrategy"]


class FixedExposureStrategy(ExchangeStrategy):
    """Accept the same exposure for every partner, trusted or not."""

    name = "fixed-exposure"

    def __init__(
        self,
        exposure: float = 10.0,
        payment_policy: PaymentPolicy = PaymentPolicy.LAZY,
        include_reputation_continuation: bool = True,
    ):
        if exposure < 0:
            raise MarketplaceError(f"exposure must be >= 0, got {exposure}")
        self._exposure = exposure
        self._payment_policy = payment_policy
        self._include_reputation_continuation = include_reputation_continuation

    def plan(
        self,
        bundle: GoodsBundle,
        price: float,
        context: StrategyContext,
    ) -> Optional[ExchangeSequence]:
        supplier_penalty = (
            context.supplier_defection_penalty
            if self._include_reputation_continuation
            else 0.0
        )
        consumer_penalty = (
            context.consumer_defection_penalty
            if self._include_reputation_continuation
            else 0.0
        )
        requirements = ExchangeRequirements(
            supplier_defection_penalty=supplier_penalty,
            consumer_defection_penalty=consumer_penalty,
            consumer_accepted_exposure=self._exposure,
            supplier_accepted_exposure=self._exposure,
        )
        return plan_exchange(bundle, price, requirements, self._payment_policy)

    def describe(self) -> str:
        return f"{self.name}({self._exposure})"


class OptimisticStrategy(ExchangeStrategy):
    """Accept any exposure: schedule every trade, trust everyone fully.

    Equivalent to planning with an unbounded allowance; the planner then
    simply produces a convenient schedule with no regard for temptations.
    """

    name = "optimistic"

    def __init__(self, payment_policy: PaymentPolicy = PaymentPolicy.LAZY):
        self._payment_policy = payment_policy

    def plan(
        self,
        bundle: GoodsBundle,
        price: float,
        context: StrategyContext,
    ) -> Optional[ExchangeSequence]:
        scale = bundle.total_supplier_cost + bundle.total_consumer_value + price + 1.0
        requirements = ExchangeRequirements(
            consumer_accepted_exposure=scale,
            supplier_accepted_exposure=scale,
        )
        return plan_exchange(bundle, price, requirements, self._payment_policy)
