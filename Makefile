# Developer entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH (no install required).

PY ?= python
export PYTHONPATH := src

.PHONY: test check typecheck bench bench-smoke

test:
	$(PY) -m pytest -x -q

# Static contract analysis (repro check): determinism, wire-safety,
# telemetry discipline, N+1 lint, exception hygiene and canonical dtypes
# over src/repro/, gated against the committed (empty) baseline.  Exits
# non-zero on any new finding; dependency-free, so it runs anywhere the
# tests do.
check:
	$(PY) -m repro.cli check --baseline check_baseline.json

# Strict mypy over repro.obs, repro.distributed and repro.trust.backend
# (config in pyproject.toml).  Needs mypy: pip install -e .[dev] first.
# CI runs this on the newest Python only.
typecheck:
	$(PY) -m mypy --config-file pyproject.toml

# Full benchmark/experiment suite: regenerates every table and figure under
# benchmarks/results/.
bench:
	$(PY) -m pytest benchmarks -q

# Cheap guard that every benchmark still runs: tiny parameters via
# REPRO_BENCH_SMOKE, one pass, fail fast.  Keeps benchmarks from silently
# rotting without paying the full measurement cost.  This includes the
# enforced acceptance bars: backend batching speedups, sharding overhead
# (bench_sharded_backend), live-rebalance balance and split-pause bars
# (bench_shard_rebalance: max shard share <= 2/N after auto splits at
# < 10% pause cost), the evidence-repair convergence/overhead bars
# (bench_evidence_repair: gossip >= 0.99 effective delivery at < 3x
# message overhead under 20% loss) and the worker-distribution bars
# (bench_worker_distribution: score bit-identity and the kill-and-recover
# drill healing to effective_delivery_ratio 1.0; the >= 1.5x speedup bar
# at 4 workers is enforced on >= 4-core machines in the full pass).  The
# worker bench carries its own SIGALRM watchdog so a deadlocked worker
# pool fails fast instead of hanging the run.
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PY) -m pytest benchmarks -x -q
